#include "core/flashloan_id.h"

#include <cstdint>
#include <cstring>
#include <string_view>

namespace leishen::core {
namespace {

using chain::call_record;
using chain::event_log;
using chain::trace_event;

// ---- packed trigger signature table (prefilter hot path) --------------------
//
// The Table II triggers, packed as (length, bytes) so the prefilter never
// touches std::string comparison machinery: a candidate name is first
// checked against a 64-bit bitmask of trigger lengths (one shift+test — the
// overwhelmingly common "Transfer", length 8, dies here), and only a length
// match pays one memcmp against the unique trigger of that length. The
// triggers happen to have pairwise distinct lengths, which is what makes
// the table a direct length-indexed lookup rather than a search.

// The strings themselves are exported from the header (the corpus reader
// resolves them against its on-disk dictionary); the packed table here is
// just the hot-path encoding. Lengths: 13 / 9 / 12 — pairwise distinct.
inline constexpr std::string_view kUniswapCallback = kPrefilterUniswapCallback;
inline constexpr std::string_view kAaveFlashLoan = kPrefilterAaveEvent;
inline constexpr std::string_view kDydxLogOperation = kPrefilterDydxEvent;

inline constexpr std::uint64_t kEventLenMask =
    (std::uint64_t{1} << kAaveFlashLoan.size()) |
    (std::uint64_t{1} << kDydxLogOperation.size());

/// True iff `name` is one of the two trigger *event* names.
inline bool is_trigger_event(const std::string& name) noexcept {
  const std::size_t n = name.size();
  if (n >= 64 || ((kEventLenMask >> n) & 1) == 0) return false;
  const std::string_view sig =
      n == kAaveFlashLoan.size() ? kAaveFlashLoan : kDydxLogOperation;
  return std::memcmp(name.data(), sig.data(), n) == 0;
}

/// True iff `method` is the Uniswap flash-swap callback.
inline bool is_trigger_call(const std::string& method) noexcept {
  return method.size() == kUniswapCallback.size() &&
         std::memcmp(method.data(), kUniswapCallback.data(),
                     kUniswapCallback.size()) == 0;
}

/// Uniswap flash swaps: find each uniswapV2Call callback; the loaned
/// amounts are the Transfer logs the pair emitted between its enclosing
/// swap call and the callback.
void detect_uniswap(const chain::tx_receipt& rec, flashloan_info& out) {
  const auto& evs = rec.events;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const auto* cb = std::get_if<call_record>(&evs[i]);
    if (cb == nullptr || !is_trigger_call(cb->method)) continue;
    const address pair = cb->caller;
    const address borrower = cb->callee;
    // Walk back to the pair's swap call, collecting pair -> borrower
    // Transfer logs: the optimistic payouts, i.e. the loan principal.
    // Thread-local scratch: reused across transactions, so steady-state
    // identification allocates nothing.
    static thread_local std::vector<flash_loan> loans;
    loans.clear();
    for (std::size_t j = i; j-- > 0;) {
      if (const auto* call = std::get_if<call_record>(&evs[j])) {
        if (call->method == "swap" && call->callee == pair) break;
      }
      if (const auto* log = std::get_if<event_log>(&evs[j])) {
        if (log->name == chain::kTransferEvent && log->addr0 == pair &&
            log->addr1 == borrower) {
          loans.push_back(flash_loan{.provider = flash_provider::uniswap,
                                     .provider_contract = pair,
                                     .token = chain::asset::token(log->emitter),
                                     .amount = log->amount0});
        }
      }
    }
    if (!loans.empty()) {
      out.is_flash_loan = true;
      if (out.borrower.is_zero()) out.borrower = borrower;
      out.loans.insert(out.loans.end(), loans.begin(), loans.end());
    }
  }
}

/// AAVE: every FlashLoan event is one loan.
void detect_aave(const chain::tx_receipt& rec, flashloan_info& out) {
  for (const trace_event& ev : rec.events) {
    const auto* log = std::get_if<event_log>(&ev);
    if (log == nullptr || log->name != "FlashLoan") continue;
    out.is_flash_loan = true;
    if (out.borrower.is_zero()) out.borrower = log->addr0;
    out.loans.push_back(flash_loan{.provider = flash_provider::aave,
                                   .provider_contract = log->emitter,
                                   .token = chain::asset::token(log->addr1),
                                   .amount = log->amount0});
  }
}

/// dYdX: requires LogOperation, LogWithdraw, LogCall, LogDeposit from the
/// same contract, in order.
void detect_dydx(const chain::tx_receipt& rec, flashloan_info& out) {
  int stage = 0;  // 0=need LogOperation, 1=LogWithdraw, 2=LogCall, 3=LogDeposit
  address solo;
  flash_loan pending{};
  address borrower;
  for (const trace_event& ev : rec.events) {
    const auto* log = std::get_if<event_log>(&ev);
    if (log == nullptr) continue;
    switch (stage) {
      case 0:
        if (log->name == "LogOperation") {
          solo = log->emitter;
          borrower = log->addr0;
          stage = 1;
        }
        break;
      case 1:
        if (log->name == "LogWithdraw" && log->emitter == solo) {
          pending = flash_loan{.provider = flash_provider::dydx,
                               .provider_contract = solo,
                               .token = chain::asset::token(log->addr1),
                               .amount = log->amount0};
          stage = 2;
        }
        break;
      case 2:
        if (log->name == "LogCall" && log->emitter == solo) stage = 3;
        break;
      case 3:
        if (log->name == "LogDeposit" && log->emitter == solo) {
          out.is_flash_loan = true;
          if (out.borrower.is_zero()) out.borrower = borrower;
          out.loans.push_back(pending);
          stage = 0;  // allow repeated batches
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace

const char* to_string(flash_provider p) noexcept {
  switch (p) {
    case flash_provider::uniswap:
      return "Uniswap";
    case flash_provider::aave:
      return "AAVE";
    case flash_provider::dydx:
      return "dYdX";
  }
  return "?";
}

bool may_be_flash_loan(const chain::tx_receipt& receipt) noexcept {
  if (!receipt.success) return false;  // identify_flash_loan rejects these too
  for (const trace_event& ev : receipt.events) {
    if (const auto* call = std::get_if<call_record>(&ev)) {
      // Uniswap flash swaps are only recognized through their callback.
      if (is_trigger_call(call->method)) return true;
    } else if (const auto* log = std::get_if<event_log>(&ev)) {
      // AAVE loans require a FlashLoan event; the dYdX state machine cannot
      // leave stage 0 without a LogOperation event.
      if (is_trigger_event(log->name)) return true;
    }
  }
  return false;
}

flashloan_info identify_flash_loan(const chain::tx_receipt& receipt) {
  flashloan_info out;
  identify_flash_loan_into(receipt, out);
  return out;
}

void identify_flash_loan_into(const chain::tx_receipt& receipt,
                              flashloan_info& out) {
  out.is_flash_loan = false;
  out.borrower = address{};
  out.loans.clear();
  if (!receipt.success) return;  // reverted txs left no flash loan
  detect_uniswap(receipt, out);
  detect_aave(receipt, out);
  detect_dydx(receipt, out);
}

}  // namespace leishen::core
