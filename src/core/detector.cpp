#include "core/detector.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "replay/replayer.h"

namespace leishen::core {

std::vector<pair_volatility> detection_report::volatilities() const {
  // Collect exchange rates per unordered token pair, in the canonical
  // direction (smaller asset as base): rate = amount(quote) / amount(base).
  struct obs {
    rate min_rate{u256{1}, u256{1}};
    rate max_rate{u256{1}, u256{1}};
    int n = 0;
  };
  std::map<std::pair<asset, asset>, obs> seen;
  auto add = [&](const asset& a, const u256& amount_a, const asset& b,
                 const u256& amount_b) {
    if (amount_a.is_zero() || amount_b.is_zero()) return;
    const bool flip = b < a;
    const asset base = flip ? b : a;
    const asset quote = flip ? a : b;
    const rate r = flip ? rate{amount_a, amount_b} : rate{amount_b, amount_a};
    auto& o = seen[{base, quote}];
    if (o.n == 0) {
      o.min_rate = o.max_rate = r;
    } else {
      if (r < o.min_rate) o.min_rate = r;
      if (o.max_rate < r) o.max_rate = r;
    }
    ++o.n;
  };
  for (const trade& t : trades) {
    add(t.token_buy, t.amount_buy, t.token_sell, t.amount_sell);
  }
  std::vector<pair_volatility> out;
  for (const auto& [key, o] : seen) {
    if (o.n < 2) continue;
    out.push_back(pair_volatility{
        .base = key.first,
        .quote = key.second,
        .percent = volatility_percent(o.max_rate, o.min_rate),
        .observations = o.n});
  }
  std::sort(out.begin(), out.end(),
            [](const pair_volatility& a, const pair_volatility& b) {
              return a.percent > b.percent;
            });
  return out;
}

double max_volatility_pct(const trade_list& trades) {
  // Same observation rule as volatilities(): canonical pair direction,
  // zero legs skipped, only pairs seen at least twice contribute.
  struct pair_obs {
    asset base;
    asset quote;
    rate min_rate{u256{1}, u256{1}};
    rate max_rate{u256{1}, u256{1}};
    int n = 0;
  };
  static thread_local std::vector<pair_obs> seen;
  seen.clear();
  for (const trade& t : trades) {
    if (t.amount_buy.is_zero() || t.amount_sell.is_zero()) continue;
    const bool flip = t.token_sell < t.token_buy;
    const asset& base = flip ? t.token_sell : t.token_buy;
    const asset& quote = flip ? t.token_buy : t.token_sell;
    const rate r = flip ? rate{t.amount_buy, t.amount_sell}
                        : rate{t.amount_sell, t.amount_buy};
    pair_obs* o = nullptr;
    for (pair_obs& p : seen) {
      if (p.base == base && p.quote == quote) {
        o = &p;
        break;
      }
    }
    if (o == nullptr) {
      seen.push_back(pair_obs{base, quote, r, r, 1});
      continue;
    }
    if (r < o->min_rate) o->min_rate = r;
    if (o->max_rate < r) o->max_rate = r;
    ++o->n;
  }
  double max_pct = 0.0;
  bool any = false;
  for (const pair_obs& p : seen) {
    if (p.n < 2) continue;
    const double pct = volatility_percent(p.max_rate, p.min_rate);
    if (!any || pct > max_pct) max_pct = pct;
    any = true;
  }
  return max_pct;
}

std::map<asset, detection_report::net_flow>
detection_report::borrower_flows() const {
  std::map<asset, net_flow> flows;
  for (const app_transfer& t : app_transfers) {
    if (t.to_tag == borrower_tag) flows[t.token].in += t.amount;
    if (t.from_tag == borrower_tag) flows[t.token].out += t.amount;
  }
  return flows;
}

void detection_report::reset(std::uint64_t tx) noexcept {
  tx_index = tx;
  is_flash_loan = false;
  flash.is_flash_loan = false;
  flash.borrower = address{};
  flash.loans.clear();
  borrower_tag = tag_id{};
  account_transfers.clear();
  tagged_transfers.clear();
  app_transfers.clear();
  trades.clear();
  matches.clear();
}

detector::detector(const chain::creation_registry& creations,
                   const etherscan::label_db& labels, asset weth_token,
                   pattern_params params, shared_tag_cache* tag_cache)
    : tagger_{creations, labels, tag_cache},
      weth_token_{weth_token},
      params_{params} {}

detection_report detector::analyze(const chain::tx_receipt& receipt) const {
  scan_context ctx;
  analyze_into(receipt, ctx);
  return std::move(ctx.report);
}

void detector::analyze_into(const chain::tx_receipt& receipt,
                            scan_context& ctx) const {
  detection_report& report = ctx.report;
  report.reset(receipt.tx_index);
  identify_flash_loan_into(receipt, report.flash);
  report.is_flash_loan = report.flash.is_flash_loan;
  if (!report.is_flash_loan) return;

  report.borrower_tag = tagger_.tag_of(report.flash.borrower);
  replay::extract_transfers_into(receipt, report.account_transfers);
  tagger_.lift_into(report.account_transfers, report.tagged_transfers);
  simplify_params sp = simplify_params_;
  sp.protected_tag = report.borrower_tag;  // never merge through the borrower
  simplify_into(report.tagged_transfers, weth_token_, sp, report.app_transfers,
                ctx.scratch);
  identify_trades_into(report.app_transfers, report.trades);
  match_patterns_into(report.trades, report.borrower_tag, params_,
                      report.matches);
}

void print_report(std::ostream& os, const detection_report& report) {
  os << "tx #" << report.tx_index;
  if (!report.is_flash_loan) {
    os << ": not a flash loan transaction\n";
    return;
  }
  os << ": flash loan by " << report.borrower_tag << " [";
  for (std::size_t i = 0; i < report.flash.loans.size(); ++i) {
    const auto& l = report.flash.loans[i];
    os << (i ? ", " : "") << to_string(l.provider) << ":"
       << l.amount.to_decimal();
  }
  os << "]\n";
  os << "  transfers: " << report.account_transfers.size()
     << " account-level -> " << report.app_transfers.size()
     << " app-level; trades: " << report.trades.size() << "\n";
  for (const trade& t : report.trades) {
    os << "    " << to_string(t.kind) << " " << t.buyer << " -> " << t.seller
       << ": sell " << t.amount_sell.to_decimal() << " buy "
       << t.amount_buy.to_decimal() << "\n";
  }
  if (report.matches.empty()) {
    os << "  verdict: benign\n";
    return;
  }
  os << "  verdict: ATTACK —";
  for (const auto& m : report.matches) {
    os << " " << to_string(m.pattern) << "(vs " << m.counterparty << ", "
       << m.trade_indices.size() << " trades)";
  }
  os << "\n";
  for (const auto& v : report.volatilities()) {
    os << "  volatility " << v.percent << "% over " << v.observations
       << " trades\n";
  }
}

}  // namespace leishen::core
