#include "core/detector.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "replay/replayer.h"

namespace leishen::core {

std::vector<pair_volatility> detection_report::volatilities() const {
  // Collect exchange rates per unordered token pair, in the canonical
  // direction (smaller asset as base): rate = amount(quote) / amount(base).
  struct obs {
    rate min_rate{u256{1}, u256{1}};
    rate max_rate{u256{1}, u256{1}};
    int n = 0;
  };
  std::map<std::pair<asset, asset>, obs> seen;
  auto add = [&](const asset& a, const u256& amount_a, const asset& b,
                 const u256& amount_b) {
    if (amount_a.is_zero() || amount_b.is_zero()) return;
    const bool flip = b < a;
    const asset base = flip ? b : a;
    const asset quote = flip ? a : b;
    const rate r = flip ? rate{amount_a, amount_b} : rate{amount_b, amount_a};
    auto& o = seen[{base, quote}];
    if (o.n == 0) {
      o.min_rate = o.max_rate = r;
    } else {
      if (r < o.min_rate) o.min_rate = r;
      if (o.max_rate < r) o.max_rate = r;
    }
    ++o.n;
  };
  for (const trade& t : trades) {
    add(t.token_buy, t.amount_buy, t.token_sell, t.amount_sell);
  }
  std::vector<pair_volatility> out;
  for (const auto& [key, o] : seen) {
    if (o.n < 2) continue;
    out.push_back(pair_volatility{
        .base = key.first,
        .quote = key.second,
        .percent = volatility_percent(o.max_rate, o.min_rate),
        .observations = o.n});
  }
  std::sort(out.begin(), out.end(),
            [](const pair_volatility& a, const pair_volatility& b) {
              return a.percent > b.percent;
            });
  return out;
}

std::map<asset, detection_report::net_flow>
detection_report::borrower_flows() const {
  std::map<asset, net_flow> flows;
  for (const app_transfer& t : app_transfers) {
    if (t.to_tag == borrower_tag) flows[t.token].in += t.amount;
    if (t.from_tag == borrower_tag) flows[t.token].out += t.amount;
  }
  return flows;
}

detector::detector(const chain::creation_registry& creations,
                   const etherscan::label_db& labels, asset weth_token,
                   pattern_params params, shared_tag_cache* tag_cache)
    : tagger_{creations, labels, tag_cache},
      weth_token_{weth_token},
      params_{params} {}

detection_report detector::analyze(const chain::tx_receipt& receipt) const {
  detection_report report;
  report.tx_index = receipt.tx_index;
  report.flash = identify_flash_loan(receipt);
  report.is_flash_loan = report.flash.is_flash_loan;
  if (!report.is_flash_loan) return report;

  report.borrower_tag = tagger_.tag_of(report.flash.borrower);
  report.account_transfers = replay::extract_transfers(receipt);
  report.tagged_transfers = tagger_.lift(report.account_transfers);
  simplify_params sp = simplify_params_;
  sp.protected_tag = report.borrower_tag;  // never merge through the borrower
  report.app_transfers = simplify(report.tagged_transfers, weth_token_, sp);
  report.trades = identify_trades(report.app_transfers);
  report.matches =
      match_patterns(report.trades, report.borrower_tag, params_);
  return report;
}

void print_report(std::ostream& os, const detection_report& report) {
  os << "tx #" << report.tx_index;
  if (!report.is_flash_loan) {
    os << ": not a flash loan transaction\n";
    return;
  }
  os << ": flash loan by " << report.borrower_tag << " [";
  for (std::size_t i = 0; i < report.flash.loans.size(); ++i) {
    const auto& l = report.flash.loans[i];
    os << (i ? ", " : "") << to_string(l.provider) << ":"
       << l.amount.to_decimal();
  }
  os << "]\n";
  os << "  transfers: " << report.account_transfers.size()
     << " account-level -> " << report.app_transfers.size()
     << " app-level; trades: " << report.trades.size() << "\n";
  for (const trade& t : report.trades) {
    os << "    " << to_string(t.kind) << " " << t.buyer << " -> " << t.seller
       << ": sell " << t.amount_sell.to_decimal() << " buy "
       << t.amount_buy.to_decimal() << "\n";
  }
  if (report.matches.empty()) {
    os << "  verdict: benign\n";
    return;
  }
  os << "  verdict: ATTACK —";
  for (const auto& m : report.matches) {
    os << " " << to_string(m.pattern) << "(vs " << m.counterparty << ", "
       << m.trade_indices.size() << " trades)";
  }
  os << "\n";
  for (const auto& v : report.volatilities()) {
    os << "  volatility " << v.percent << "% over " << v.observations
       << " trades\n";
  }
}

}  // namespace leishen::core
