// Attack profitability accounting (paper §VI-D3, Table VII).
#pragma once

#include <functional>

#include "core/detector.h"

namespace leishen::core {

/// Values an amount of an asset in USD (scenario-owned price table; the
/// paper uses average prices on the attack day).
using usd_valuer = std::function<double(const asset&, const u256&)>;

struct profit_summary {
  double net_usd = 0.0;       // borrower inflow - outflow, USD
  double borrowed_usd = 0.0;  // flash loan principal, USD
  double yield_rate_pct = 0.0;  // net / borrowed * 100
};

/// Net profit of the flash loan borrower over the transaction.
[[nodiscard]] profit_summary summarize_profit(const detection_report& report,
                                              const usd_valuer& value);

}  // namespace leishen::core
