// Post-attack forensics (paper §VI-D2).
//
// Two behaviours the paper observes on almost all wild attackers:
//   1. some call selfdestruct to hide their traces ("the contract code
//      remains in the entire blockchain history and can be replayed") —
//      we detect the call and note the account's destroyed flag;
//   2. nearly all launder their profit: through chains of intermediary
//      accounts they control, or through coin mixers.
// trace_profit_flow follows the attacker's funds forward across the
// transactions *after* the attack and classifies the exit.
#pragma once

#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "core/detector.h"

namespace leishen::core {

/// True if the transaction's call tree contains a selfdestruct.
[[nodiscard]] bool used_selfdestruct(const chain::tx_receipt& receipt);

enum class exit_kind { held, multi_hop, mixer };

[[nodiscard]] const char* to_string(exit_kind k) noexcept;

struct profit_hop {
  address from;
  address to;
  u256 amount;
  asset token;
  std::uint64_t tx_index = 0;
};

struct laundering_report {
  exit_kind kind = exit_kind::held;
  int hops = 0;                 // longest intermediary chain observed
  bool reached_mixer = false;   // funds deposited into a mixer contract
  bool selfdestructed = false;  // the attack contract removed itself
  std::vector<profit_hop> trail;
};

/// Follow the borrower's outgoing transfers across all receipts after the
/// attack transaction, up to `max_hops` account hops. An account is
/// followed only while it looks attacker-controlled: unlabeled, and first
/// funded by the trail itself.
[[nodiscard]] laundering_report trace_profit_flow(
    const chain::blockchain& bc, const etherscan::label_db& labels,
    const address& attack_contract, std::uint64_t attack_tx_index,
    int max_hops = 6);

}  // namespace leishen::core
