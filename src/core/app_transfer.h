// Application-level asset transfer and trade types (paper §V-B, §V-C).
//
// Data-oriented layout: application identities are carried as interned
// 32-bit `tag_id` handles, not strings, so these records are flat
// fixed-size values the pipeline can compare with integer instructions and
// keep in reused arena buffers with zero steady-state allocation. The tag
// strings materialize only at report/sink boundaries via `tag_id::str()`.
#pragma once

#include <iosfwd>
#include <vector>

#include "chain/trace.h"
#include "common/interner.h"
#include "common/rate.h"

namespace leishen::core {

using leishen::address;
using leishen::tag_id;
using chain::asset;

/// Tag of the BlackHole (zero) address: mint source / burn sink.
inline constexpr const char* kBlackHoleTag = "BlackHole";

/// Its pre-seeded interned id (process-invariant, see common/interner.h).
inline constexpr tag_id kBlackHole = tag_id::from_raw(kBlackHoleTagId);

/// A transfer whose endpoints have been lifted from 160-bit accounts to
/// application identities. `from_tag`/`to_tag` are application names when
/// tagging succeeded, creation-tree-root pseudo-tags ("0x...") when the tree
/// carries no label, or per-account conflict tags ("?0x...") when the tree
/// carries labels of different applications (paper Fig. 7).
struct app_transfer {
  tag_id from_tag;
  tag_id to_tag;
  u256 amount;
  asset token;

  friend bool operator==(const app_transfer&, const app_transfer&) = default;
};

using app_transfer_list = std::vector<app_transfer>;

enum class trade_kind { swap, mint_liquidity, remove_liquidity };

[[nodiscard]] const char* to_string(trade_kind k) noexcept;

/// A key trade action (paper §IV-B): `buyer` exchanges `amount_sell` of
/// `token_sell` for `amount_buy` of `token_buy` with `seller`. The
/// three-transfer conditions of Table III can carry a second leg on one
/// side (e.g. removing liquidity into two assets); the secondary leg is
/// recorded but rates always use the primary leg.
struct trade {
  tag_id buyer;
  tag_id seller;
  u256 amount_sell;
  asset token_sell;
  u256 amount_buy;
  asset token_buy;
  trade_kind kind = trade_kind::swap;
  // Optional secondary legs (three-transfer forms); amount zero when absent.
  u256 amount_sell2;
  asset token_sell2;
  u256 amount_buy2;
  asset token_buy2;

  /// Price the buyer pays per unit bought: amount_sell / amount_buy.
  [[nodiscard]] rate buy_price() const { return rate{amount_sell, amount_buy}; }
};

using trade_list = std::vector<trade>;

}  // namespace leishen::core
