#include "core/profit.h"

namespace leishen::core {

profit_summary summarize_profit(const detection_report& report,
                                const usd_valuer& value) {
  profit_summary out;
  for (const auto& [token, flow] : report.borrower_flows()) {
    out.net_usd += value(token, flow.in);
    out.net_usd -= value(token, flow.out);
  }
  for (const auto& loan : report.flash.loans) {
    out.borrowed_usd += value(loan.token, loan.amount);
  }
  if (out.borrowed_usd > 0) {
    out.yield_rate_pct = out.net_usd / out.borrowed_usd * 100.0;
  }
  return out;
}

}  // namespace leishen::core
