#include "core/parallel_scanner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

namespace leishen::core {

parallel_scanner::parallel_scanner(const chain::creation_registry& creations,
                                   const etherscan::label_db& labels,
                                   chain::asset weth_token,
                                   parallel_scanner_options options)
    : creations_{creations},
      labels_{labels},
      weth_{weth_token},
      options_{std::move(options)},
      pool_{options_.threads} {
  options_.scan.tag_cache =
      options_.share_tag_cache ? &tag_cache_ : nullptr;
  if (options_.chunk_size == 0) options_.chunk_size = 1;
  // Per-worker scanners are built once, up front; scan_all only dispatches
  // chunk claims to them.
  workers_.reserve(pool_.size());
  for (unsigned w = 0; w < pool_.size(); ++w) {
    workers_.push_back(std::make_unique<scanner>(creations_, labels_, weth_,
                                                 options_.scan));
  }
}

void parallel_scanner::scan_all(
    const std::vector<chain::tx_receipt>& receipts,
    const std::function<void(const incident&)>& on_incident) {
  scan_stage_observer* const obs = options_.scan.stage_observer;
  const auto setup_t0 = std::chrono::steady_clock::now();

  const std::size_t n = receipts.size();
  // Size the chunk count to the corpus: at most chunks_per_worker units per
  // worker, never below the configured minimum chunk size. A 3k-receipt
  // corpus on 2 threads then dispatches ~16 chunks instead of ~50, and the
  // per-scan dispatch overhead shrinks proportionally.
  const std::size_t max_chunks =
      std::max<std::size_t>(1, static_cast<std::size_t>(pool_.size()) *
                                   std::max<std::size_t>(
                                       1, options_.chunks_per_worker));
  const std::size_t chunk =
      std::max(options_.chunk_size, (n + max_chunks - 1) / max_chunks);
  const std::size_t nchunks = (n + chunk - 1) / chunk;

  // One result slot per chunk: workers write only their own slots, the
  // merge below reads them in chunk order once the pool is idle. The slots
  // are members cleared in place, so repeated scans reuse their capacity.
  if (chunk_incidents_.size() < nchunks) chunk_incidents_.resize(nchunks);
  if (chunk_stats_.size() < nchunks) chunk_stats_.resize(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    chunk_incidents_[c].clear();
    chunk_stats_[c] = scan_stats{};
  }
  std::atomic<std::size_t> next_chunk{0};

  // Worker-private persistent scanners: each carries its detector, tagging
  // L1 memo and pipeline buffers across every chunk of every scan.
  const auto run_worker = [&](unsigned w) {
    const scanner& s = *workers_[w];
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      s.scan_range(receipts, c * chunk, (c + 1) * chunk, chunk_stats_[c],
                   chunk_incidents_[c]);
    }
  };
  // The calling thread participates as worker 0 instead of blocking in
  // wait() while the pool does everything: a 1-thread engine then scans
  // entirely inline (no handoff, no wakeup — serial speed), and at any
  // width the caller's core contributes instead of idling.
  // Never wake more workers than there are chunks to claim: a surplus
  // worker would only contend for the cursor, find it exhausted, and have
  // cost a wakeup for nothing.
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      pool_.size(), std::max<std::size_t>(1, nchunks)));
  for (unsigned w = 1; w < workers; ++w) {
    pool_.submit([&run_worker, w] { run_worker(w); });
  }
  {
    // Everything between scan_all entry and the last task submission is
    // dispatch overhead the receipts never see: chunk slot allocation plus
    // worker wakeup. Always recorded (two clock reads) so benches can
    // report the dispatch/scan split without an instrumented rerun; also
    // reported to the stage observer when one is attached.
    const auto setup_t1 = std::chrono::steady_clock::now();
    last_dispatch_seconds_ =
        std::chrono::duration<double>(setup_t1 - setup_t0).count();
    if (obs != nullptr) {
      obs->on_stage(scan_stage::chunk_setup, last_dispatch_seconds_);
    }
  }
  try {
    run_worker(0);
  } catch (...) {
    // Tasks reference this frame's chunk buffers: drain them before
    // unwinding. scan_range only throws on receipts no execution can
    // produce, so this path is effectively cold.
    pool_.wait();
    throw;
  }
  pool_.wait();

  // Deterministic merge: chunks are contiguous receipt ranges, so
  // concatenation in chunk order is global tx-index order; stats are
  // commutative sums.
  std::size_t total = 0;
  for (std::size_t c = 0; c < nchunks; ++c) total += chunk_incidents_[c].size();
  // Geometric growth: an exact reserve would reallocate on every
  // accumulating scan of a long-lived engine.
  const std::size_t need = incidents_.size() + total;
  if (incidents_.capacity() < need) {
    incidents_.reserve(std::max(need, incidents_.capacity() * 2));
  }
  for (std::size_t c = 0; c < nchunks; ++c) {
    stats_ += chunk_stats_[c];
    for (incident& inc : chunk_incidents_[c]) {
      if (on_incident) on_incident(inc);
      incidents_.push_back(std::move(inc));
    }
  }
}

}  // namespace leishen::core
