#include "core/parallel_scanner.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace leishen::core {

parallel_scanner::parallel_scanner(const chain::creation_registry& creations,
                                   const etherscan::label_db& labels,
                                   chain::asset weth_token,
                                   parallel_scanner_options options)
    : creations_{creations},
      labels_{labels},
      weth_{weth_token},
      options_{std::move(options)},
      pool_{options_.threads} {
  options_.scan.tag_cache =
      options_.share_tag_cache ? &tag_cache_ : nullptr;
  if (options_.chunk_size == 0) options_.chunk_size = 1;
}

void parallel_scanner::scan_all(
    const std::vector<chain::tx_receipt>& receipts,
    const std::function<void(const incident&)>& on_incident) {
  const std::size_t n = receipts.size();
  const std::size_t chunk = options_.chunk_size;
  const std::size_t nchunks = (n + chunk - 1) / chunk;

  // One result slot per chunk: workers write only their own slots, the
  // merge below reads them in chunk order once the pool is idle.
  std::vector<std::vector<incident>> chunk_incidents(nchunks);
  std::vector<scan_stats> chunk_stats(nchunks);
  std::atomic<std::size_t> next_chunk{0};

  const unsigned workers = pool_.size();
  for (unsigned w = 0; w < workers; ++w) {
    pool_.submit([&] {
      // Worker-private scanner: its detector (and tagging L1 memo) lives
      // across every chunk this worker claims.
      const scanner s{creations_, labels_, weth_, options_.scan};
      for (;;) {
        const std::size_t c =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= nchunks) break;
        s.scan_range(receipts, c * chunk, (c + 1) * chunk, chunk_stats[c],
                     chunk_incidents[c]);
      }
    });
  }
  pool_.wait();

  // Deterministic merge: chunks are contiguous receipt ranges, so
  // concatenation in chunk order is global tx-index order; stats are
  // commutative sums.
  std::size_t total = 0;
  for (const auto& ci : chunk_incidents) total += ci.size();
  incidents_.reserve(incidents_.size() + total);
  for (std::size_t c = 0; c < nchunks; ++c) {
    stats_ += chunk_stats[c];
    for (incident& inc : chunk_incidents[c]) {
      if (on_incident) on_incident(inc);
      incidents_.push_back(std::move(inc));
    }
  }
}

}  // namespace leishen::core
