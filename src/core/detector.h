// The LeiShen detection pipeline (paper Fig. 5).
//
//   receipt -> transfer history extraction -> account tagging ->
//   simplification -> trade identification -> pattern matching -> report
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "core/account_tagging.h"
#include "core/flashloan_id.h"
#include "core/patterns.h"
#include "core/simplify.h"
#include "core/trade_actions.h"
#include "etherscan/label_db.h"

namespace leishen::core {

/// Price volatility observed on one token pair within a transaction
/// (paper §III-D): ((rate_max - rate_min) / rate_min) * 100%.
struct pair_volatility {
  asset base;
  asset quote;
  double percent = 0.0;
  int observations = 0;
};

/// Everything LeiShen derives from one transaction.
struct detection_report {
  std::uint64_t tx_index = 0;
  bool is_flash_loan = false;
  flashloan_info flash;
  tag_id borrower_tag;

  chain::transfer_list account_transfers;  // stage 1
  app_transfer_list tagged_transfers;      // stage 2a (tagged, unsimplified)
  app_transfer_list app_transfers;         // stage 2b (simplified)
  trade_list trades;                       // stage 3a
  std::vector<pattern_match> matches;      // stage 3b

  /// Clear for the next transaction; every vector keeps its capacity.
  void reset(std::uint64_t tx) noexcept;

  [[nodiscard]] bool is_attack() const noexcept { return !matches.empty(); }
  [[nodiscard]] bool has_pattern(attack_pattern p) const noexcept {
    for (const auto& m : matches) {
      if (m.pattern == p) return true;
    }
    return false;
  }

  /// Max price volatility across all traded pairs.
  [[nodiscard]] std::vector<pair_volatility> volatilities() const;

  /// Net asset flow of the borrower across the transaction: token ->
  /// (inflow - outflow), with negative flows reported separately.
  struct net_flow {
    u256 in;
    u256 out;
  };
  [[nodiscard]] std::map<asset, net_flow> borrower_flows() const;
};

/// Max price volatility across all traded pairs — the one number
/// `volatilities().front().percent` would give (0.0 when no pair has two
/// observations), computed over flat thread-local scratch instead of a
/// map so the incident hot path allocates nothing.
[[nodiscard]] double max_volatility_pct(const trade_list& trades);

/// Reusable per-worker pipeline state: one report plus the simplifier's
/// ping-pong scratch. Constructed once per worker (or stream) and handed to
/// `analyze_into` per transaction — all buffers keep their capacity across
/// transactions, so the steady-state scan allocates nothing.
struct scan_context {
  detection_report report;
  app_transfer_list scratch;
};

class detector {
 public:
  /// `weth_token` identifies the canonical WETH contract for rule 2 (pass
  /// a default asset when none exists). `tag_cache` optionally shares the
  /// account-tagging memo across detectors (parallel scan workers); it must
  /// outlive the detector.
  detector(const chain::creation_registry& creations,
           const etherscan::label_db& labels, asset weth_token,
           pattern_params params = {}, shared_tag_cache* tag_cache = nullptr);

  /// Run the full pipeline on one receipt. Non-flash-loan transactions get
  /// a report with is_flash_loan == false and no further stages.
  [[nodiscard]] detection_report analyze(
      const chain::tx_receipt& receipt) const;

  /// `analyze` into a reusable context: the result lands in `ctx.report`,
  /// overwriting whatever the previous transaction left there. This is the
  /// scan engines' hot path — with a warmed-up context it performs no heap
  /// allocation for a typical transaction.
  void analyze_into(const chain::tx_receipt& receipt, scan_context& ctx) const;

  [[nodiscard]] const pattern_params& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const account_tagger& tagger() const noexcept {
    return tagger_;
  }

 private:
  account_tagger tagger_;
  asset weth_token_;
  pattern_params params_;
  simplify_params simplify_params_;
};

/// Human-readable report rendering (used by examples and benches).
void print_report(std::ostream& os, const detection_report& report);

}  // namespace leishen::core
