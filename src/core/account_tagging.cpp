#include "core/account_tagging.h"

#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace leishen::core {

const char* to_string(trade_kind k) noexcept {
  switch (k) {
    case trade_kind::swap:
      return "swap";
    case trade_kind::mint_liquidity:
      return "mint";
    case trade_kind::remove_liquidity:
      return "remove";
  }
  return "?";
}

std::optional<tag_result> shared_tag_cache::find(const address& a) const {
  const std::shared_lock lk{mu_};
  const auto it = map_.find(a);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

const tag_result& shared_tag_cache::insert(const address& a, tag_result r) {
  const std::unique_lock lk{mu_};
  return map_.emplace(a, std::move(r)).first->second;
}

std::size_t shared_tag_cache::size() const {
  const std::shared_lock lk{mu_};
  return map_.size();
}

tag_id account_tagger::tag_of(const address& a) const {
  return compute(a).tag;
}

bool account_tagger::is_conflicted(const address& a) const {
  return compute(a).conflicted;
}

const tag_result& account_tagger::compute(const address& a) const {
  const auto it = cache_.find(a);
  if (it != cache_.end()) return it->second;

  if (shared_ != nullptr) {
    if (auto hit = shared_->find(a)) {
      return cache_.emplace(a, std::move(*hit)).first->second;
    }
  }
  tag_result r = walk(a);
  if (shared_ != nullptr) r = shared_->insert(a, std::move(r));
  return cache_.emplace(a, std::move(r)).first->second;
}

tag_result account_tagger::walk(const address& a) const {
  tag_result r;
  if (a.is_zero()) {
    r.tag = kBlackHole;
  } else if (const auto own = labels_.label_of(a)) {
    r.tag = *own;
  } else {
    // Tag set = labels of ancestors and descendants (paper Fig. 7).
    std::set<std::string> tag_set;
    // ancestors
    address cur = a;
    while (const auto parent = creations_.creator_of(cur)) {
      if (const auto l = labels_.label_of(*parent)) tag_set.insert(*l);
      cur = *parent;
    }
    const address root = cur;
    // descendants
    std::vector<address> stack{a};
    while (!stack.empty()) {
      const address node = stack.back();
      stack.pop_back();
      for (const address& child : creations_.children_of(node)) {
        if (const auto l = labels_.label_of(child)) tag_set.insert(*l);
        stack.push_back(child);
      }
    }
    if (tag_set.size() == 1) {
      r.tag = *tag_set.begin();
    } else if (tag_set.empty()) {
      r.tag = root.to_hex();  // pseudo-tag: whole unlabeled tree unifies
    } else {
      r.tag = "?" + a.to_hex();  // conflicting labels: untaggable
      r.conflicted = true;
    }
  }
  return r;
}

app_transfer_list account_tagger::lift(
    const chain::transfer_list& transfers) const {
  app_transfer_list out;
  lift_into(transfers, out);
  return out;
}

void account_tagger::lift_into(const chain::transfer_list& transfers,
                               app_transfer_list& out) const {
  out.clear();
  out.reserve(transfers.size());
  for (const chain::transfer& t : transfers) {
    out.push_back(app_transfer{.from_tag = tag_of(t.sender),
                               .to_tag = tag_of(t.receiver),
                               .amount = t.amount,
                               .token = t.token});
  }
}

}  // namespace leishen::core
