// Asset transfer simplification (paper §V-B2): lift tagged account-level
// transfers to application-level transfers with three rules.
//
//   1. Remove intra-app transfers   (tag_sender == tag_receiver)
//   2. Remove WETH-related transfers after unifying WETH and ETH 1:1
//   3. Merge inter-app transfers routed through an intermediary whose in
//      and out amounts agree within 0.1% (yield aggregators' pass-through)
#pragma once

#include <cstdint>

#include "core/app_transfer.h"

namespace leishen::core {

struct simplify_params {
  /// Application tag of the canonical WETH contract (interned handle; the
  /// rule checks are integer compares).
  tag_id weth_tag = tag_id{"Wrapped Ether"};
  /// Merge tolerance as a fraction: |in - out| / max < num/den (paper: 0.1%).
  std::uint64_t merge_tolerance_num = 1;
  std::uint64_t merge_tolerance_den = 1000;
  /// A party that must never be treated as a pass-through intermediary —
  /// the flash loan borrower, which identification resolves before this
  /// stage. Without this, a borrower whose sale proceeds happen to equal
  /// its loan repayment would be merged away along with its trades.
  /// Default-constructed = the empty tag, which never matches a lifted leg.
  tag_id protected_tag;
};

/// Rule 2 asset rewrite: map the WETH token to native Ether. `weth_token`
/// is the WETH contract's asset id (zero contract -> rule disabled).
[[nodiscard]] app_transfer_list unify_weth(const app_transfer_list& in,
                                           const asset& weth_token);

/// Apply all three rules in the paper's order. `weth_token` identifies the
/// WETH contract's token (pass a default-constructed asset when the
/// transaction universe has no WETH).
[[nodiscard]] app_transfer_list simplify(const app_transfer_list& in,
                                         const asset& weth_token,
                                         const simplify_params& params = {});

/// `simplify` into caller-owned buffers (cleared first, capacity kept).
/// `scratch` is ping-pong storage for the rule-3 fixpoint; after return its
/// contents are unspecified. The zero-allocation form the scan engines use
/// per transaction — `out` and `scratch` must be distinct and must not
/// alias `in`.
void simplify_into(const app_transfer_list& in, const asset& weth_token,
                   const simplify_params& params, app_transfer_list& out,
                   app_transfer_list& scratch);

}  // namespace leishen::core
