// Parallel block-pipeline scan engine.
//
// The paper's detection is a post-hoc bulk pass over a receipt corpus (the
// first 14.5M mainnet blocks), which is embarrassingly parallel per
// transaction: each receipt's pipeline run depends only on the immutable
// creation registry and label DB. This engine shards a receipt range into
// fixed-size contiguous chunks, hands chunks to a worker pool (dynamic
// work-stealing via an atomic chunk cursor, so clustered attack activity
// cannot starve workers), runs a private `scanner` per worker, and merges
// per-chunk incident lists and counters in chunk (= tx-index) order.
//
// Determinism: every per-receipt result is a pure function of (receipt,
// registry, labels, options), chunk outputs are stored indexed by chunk,
// and the merge concatenates them in order — so incidents and stats are
// bit-identical to the serial `scanner` for any thread count or chunk size.
// Workers optionally share one `shared_tag_cache` so creation-tree walks
// computed by one worker are reused by all (first-writer-wins inserts of
// identical values keep this deterministic too).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/scanner.h"

namespace leishen::core {

struct parallel_scanner_options {
  /// Per-worker scanner configuration (params, heuristic, prefilter). Its
  /// `tag_cache` field is overwritten by the engine according to
  /// `share_tag_cache` below. Its `stage_observer` (if any) is shared by
  /// every worker, so it must be thread-safe — the service-layer metrics
  /// bridge is; this is how batch scans and the streaming monitor export
  /// identical per-stage latency metrics.
  scanner_options scan;
  /// Scan width; 0 = one worker per hardware thread. The calling thread
  /// participates as one of the workers during scan_all (it would otherwise
  /// just block), so width 1 runs entirely inline at serial speed.
  unsigned threads = 0;
  /// MINIMUM receipts per work unit. The effective chunk size is scaled to
  /// the corpus: a scan produces at most `threads * chunks_per_worker`
  /// chunks, so small corpora are not shredded into dozens of units whose
  /// per-chunk dispatch (atomic claim + slot clear) rivals the scan itself.
  /// Results are bit-identical for any chunking (the merge is chunk-order
  /// concatenation of contiguous ranges), so this is purely a scheduling
  /// knob.
  std::size_t chunk_size = 64;
  /// Chunk-count budget per worker for dynamic load balancing: enough
  /// stealable units that one clustered chunk cannot starve the rest of the
  /// pool, few enough that dispatch stays amortized.
  std::size_t chunks_per_worker = 8;
  /// Share one thread-safe account-tagging memo across workers (on top of
  /// each worker's private memo).
  bool share_tag_cache = true;
};

class parallel_scanner {
 public:
  parallel_scanner(const chain::creation_registry& creations,
                   const etherscan::label_db& labels, chain::asset weth_token,
                   parallel_scanner_options options = {});

  /// Scan the whole range. `on_incident` is invoked after the merge, in
  /// tx-index order (unlike the serial scanner it is not streamed while
  /// scanning — workers are still running then). Repeated calls accumulate
  /// into `stats()`/`incidents()` like the serial scanner.
  void scan_all(const std::vector<chain::tx_receipt>& receipts,
                const std::function<void(const incident&)>& on_incident =
                    nullptr);

  [[nodiscard]] const scan_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<incident>& incidents() const noexcept {
    return incidents_;
  }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }
  /// Dispatch overhead of the most recent scan_all call: wall time between
  /// entry and the last pool submission (chunk slot setup + worker wakeup),
  /// before the caller starts scanning as worker 0. Always measured — two
  /// clock reads per scan — independent of any stage observer, so benches
  /// can split dispatch from scan without instrumented reruns.
  [[nodiscard]] double last_dispatch_seconds() const noexcept {
    return last_dispatch_seconds_;
  }
  [[nodiscard]] const shared_tag_cache& tag_cache() const noexcept {
    return tag_cache_;
  }

 private:
  const chain::creation_registry& creations_;
  const etherscan::label_db& labels_;
  chain::asset weth_;
  parallel_scanner_options options_;
  shared_tag_cache tag_cache_;
  thread_pool pool_;
  /// One persistent scanner per pool thread, constructed once here rather
  /// than per scan_all call: each carries its detector, tagging L1 memo and
  /// reusable pipeline buffers across every scan, so repeated scans (the
  /// streaming monitor's steady state) pay no per-call worker setup. Task
  /// `w` of a scan uses exactly `workers_[w]`, so no scanner is ever shared
  /// between two concurrent tasks.
  std::vector<std::unique_ptr<scanner>> workers_;
  /// Per-chunk result slots, reused across scans (cleared, capacity kept)
  /// so a steady-state scan_all performs no per-call slot allocation.
  std::vector<std::vector<incident>> chunk_incidents_;
  std::vector<scan_stats> chunk_stats_;
  double last_dispatch_seconds_ = 0.0;
  scan_stats stats_;
  std::vector<incident> incidents_;
};

}  // namespace leishen::core
