// Per-transaction stage invariants for the LeiShen pipeline.
//
// The detector's stage outputs are all carried in `detection_report`, so
// invariants can be checked from the outside without touching the hot
// path. Three families:
//
//   I1 (simplification) — the simplified transfer list differs from the
//      tagged one only in the ways the three rules permit: no intra-app or
//      WETH-touching legs survive, the WETH asset is fully unified away,
//      mint/burn legs (BlackHole endpoints) are preserved per asset, and
//      per-(tag, asset) net flows move by at most the merge tolerance times
//      the gross flow (512-bit accumulation, no overflow blind spots).
//
//   I2 (trade lifting) — every lifted trade maps back to a contiguous
//      window of simplified transfers matching its Table III form, windows
//      are disjoint and in order (no transfer consumed twice), and trade
//      fields are well-formed (distinct tokens, nonzero primary legs, no
//      BlackHole counterparty).
//
//   I3 (pattern reports) — trade indices are in range and strictly
//      increasing, per-pattern cardinalities hold, referenced trades carry
//      well-defined rates and involve the borrower, targets match the
//      borrower's perspective, and (pattern, target, counterparty) dedup
//      keys are unique.
//
// A clean pipeline produces zero violations on any input; the fuzz target
// asserts exactly that over seeded synthetic populations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.h"

namespace leishen::verify {

struct violation {
  std::uint64_t tx_index = 0;
  /// Stable invariant id, e.g. "simplify/blackhole-legs".
  std::string invariant;
  std::string detail;
};

struct audit_params {
  /// Must mirror the simplification parameters the audited pipeline ran
  /// with (the detector uses the defaults).
  core::simplify_params simplify;
  core::pattern_params patterns;
  /// Net-flow slack headroom: each router hop may shift an amount by the
  /// merge tolerance, and multi-hop chains compound, so the allowed drift
  /// is tolerance * gross * this factor.
  std::uint64_t merge_slack_factor = 8;
};

class pipeline_auditor {
 public:
  pipeline_auditor(const chain::creation_registry& creations,
                   const etherscan::label_db& labels, chain::asset weth_token,
                   audit_params params = {});

  /// Run the full pipeline on one receipt and check every invariant.
  [[nodiscard]] std::vector<violation> audit(
      const chain::tx_receipt& receipt) const;

  /// Check invariants on a report produced elsewhere (must stem from the
  /// same registry / labels / WETH asset this auditor was built with).
  [[nodiscard]] std::vector<violation> audit_report(
      const core::detection_report& report) const;

  /// Audit a whole population; violations from all receipts, in order.
  [[nodiscard]] std::vector<violation> audit_all(
      const std::vector<chain::tx_receipt>& receipts) const;

 private:
  core::detector detector_;
  chain::asset weth_token_;
  audit_params params_;
};

}  // namespace leishen::verify
