// Cross-engine differential oracle.
//
// Three engines promise bit-identical detection output over the same
// receipts: the serial `core::scanner` (the reference), the chunked
// `core::parallel_scanner` under any thread/chunk configuration, and the
// streaming `service::monitor_service`. This oracle runs one population
// through all of them and structurally diffs the incident streams and
// counters, reporting the first diverging (engine, block, tx, field) — the
// actionable unit for the seed shrinker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scanner.h"

namespace leishen::verify {

/// One parallel-engine configuration to pit against the reference.
struct engine_config {
  unsigned threads = 2;
  std::size_t chunk_size = 64;
};

struct diff_options {
  /// Detection configuration used identically by every engine.
  core::scanner_options scan;
  /// Thread/chunk grid for the parallel engine. Small odd chunk sizes force
  /// shard boundaries through the middle of attack clusters.
  std::vector<engine_config> parallel_configs = {
      {1, 7}, {2, 3}, {4, 64}, {3, 1}};
  /// Also stream the population through the monitor (producer/queue/worker
  /// path, lossless backpressure).
  bool include_monitor = true;
  /// Small on purpose: keeps the monitor's producer bumping into
  /// backpressure instead of degenerating into a bulk copy.
  std::size_t monitor_queue_capacity = 4;
  /// Also stream the population through the monitor behind a seeded fault
  /// schedule (timeouts, transient errors, a dead upstream forcing
  /// failover, duplicates, out-of-order deliveries, reorgs, poisoned
  /// receipts) routed through `service::resilient_block_source`. The
  /// collapsed (retraction-aware) incident stream and the cumulative stats
  /// must still match the serial reference exactly, and the dead-letter
  /// channel must account for every injected poison — the fault-tolerance
  /// half of the determinism contract.
  bool include_faults = true;
  std::uint64_t fault_seed = 0xF4017;
};

struct divergence {
  std::string engine;  // e.g. "parallel[threads=2,chunk=3]", "monitor"
  std::string field;   // e.g. "stats.incidents", "incident.borrower_tag"
  std::uint64_t block_number = 0;  // 0 when not attributable to a block
  std::uint64_t tx_index = 0;      // 0 when not attributable to a tx
  std::string detail;
};

struct diff_result {
  core::scan_stats reference_stats;
  std::vector<core::incident> reference_incidents;
  std::vector<divergence> divergences;  // first divergence per engine

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
};

class diff_engine {
 public:
  /// Receipts fed to `run` must reference accounts of this registry /
  /// label DB (e.g. a `generated_population` with its world).
  diff_engine(const chain::creation_registry& creations,
              const etherscan::label_db& labels, chain::asset weth_token,
              diff_options options = {});

  /// Run every engine over `receipts` (must be in chain order: block
  /// numbers nondecreasing) and diff against the serial reference.
  [[nodiscard]] diff_result run(
      const std::vector<chain::tx_receipt>& receipts) const;

 private:
  const chain::creation_registry& creations_;
  const etherscan::label_db& labels_;
  chain::asset weth_;
  diff_options options_;
};

}  // namespace leishen::verify
