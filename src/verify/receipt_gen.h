// Seeded synthetic receipt populations for correctness fuzzing.
//
// The scenario layer's `generate_population` executes real DeFi protocol
// code on the simulated chain — high fidelity, but seconds per population
// and only as diverse as the protocol mix. Differential testing and
// invariant fuzzing want the opposite trade-off: thousands of cheap,
// structurally adversarial transactions per second. This generator
// fabricates `tx_receipt`s directly at the trace level (call records,
// internal transactions, event logs) over a small synthetic world of
// creation trees and labels, hitting the corners the protocol simulators
// never produce: dust and near-tolerance pass-through chains, 2^200-scale
// amounts, burn-then-mint adjacency, conflicted tags, multi-provider
// loans, and zero-length bodies.
//
// Everything is a pure function of the seed, so any failure reproduces
// from `(seed, options)` alone — the contract the seed shrinker and the
// regression fixtures rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chain/creation_registry.h"
#include "chain/receipt.h"
#include "common/rng.h"
#include "etherscan/label_db.h"

namespace leishen::verify {

/// The immutable tagging substrate the generated receipts refer to:
/// labeled provider/pool/router trees, unlabeled attacker trees, one
/// deliberately conflicted tree, WETH, and a token roster. Fixed given the
/// world seed; receipts from any population over the same world seed are
/// mutually consistent.
struct synthetic_world {
  chain::creation_registry creations;
  etherscan::label_db labels;

  address weth_contract;
  chain::asset weth_token;   // asset::token(weth_contract)
  address aave_pool;
  address dydx_solo;

  std::vector<address> pool_contracts;     // labeled-app AMM venues
  std::vector<address> router_contracts;   // pass-through intermediaries
  std::vector<address> borrower_contracts; // unlabeled attack trees
  std::vector<address> user_eoas;          // plain EOAs (pseudo-tag roots)
  address conflicted_contract;             // tree with two labels ("?0x...")
  std::vector<chain::asset> tokens;        // ERC20 roster (excludes WETH)
};

struct generator_options {
  /// Receipts per population.
  int transactions = 32;
  /// Transactions per block (1..block_span receipts share a block number).
  int block_span = 4;
  /// Probability that a transaction is plain non-flash-loan noise (the
  /// prefilter-reject path).
  double noise_fraction = 0.25;
  /// Probability that a flash loan body includes a 2^190..2^250-scale
  /// amount segment (exercises wide arithmetic).
  double huge_amount_fraction = 0.15;
  /// Probability that a transaction is a single plain ERC20 transfer —
  /// cheap bulk traffic for corpus-scale histories, where flash loans are
  /// rare events in an ocean of ordinary transfers. At the default 0 the
  /// branch draws nothing from the rng, so legacy populations are
  /// byte-identical to builds that predate this knob.
  double plain_transfer_fraction = 0.0;
};

struct generated_population {
  std::uint64_t seed = 0;
  /// Owned by the population; receipts reference its addresses and the
  /// engines its registry/labels, so keep it alive alongside them.
  std::shared_ptr<synthetic_world> world;
  std::vector<chain::tx_receipt> receipts;
};

/// The world alone (fixtures re-run shrunken receipts against the same
/// substrate by rebuilding the world from the recorded seed).
[[nodiscard]] std::shared_ptr<synthetic_world> make_world(std::uint64_t seed);

/// A full seeded population: world + receipts.
[[nodiscard]] generated_population generate_receipts(
    std::uint64_t seed, const generator_options& options = {});

/// Continuation state for streaming generation. A cursor advanced through
/// N transactions in chunks of any size produces exactly the receipts a
/// single `generate_receipts` call with `transactions = N` would — the
/// block-cadence rng stream travels inside the cursor, and each
/// transaction's private stream is forked from it by global index.
struct generation_cursor {
  rng block_stream;  // cadence draws + per-transaction fork base
  std::uint64_t next_tx_index = 1;
  std::uint64_t block = 0;
  int left_in_block = 0;
};

/// Cursor positioned at transaction 1 of the population `(seed, options)`
/// describes. The same seed must be used for `make_world`.
[[nodiscard]] generation_cursor start_generation(
    std::uint64_t seed, const generator_options& options);

/// Append the next `count` transactions of the cursor's population to
/// `out`, advancing the cursor. `world` and `options` must match the ones
/// the cursor was started for.
void generate_receipts_into(const synthetic_world& world,
                            const generator_options& options,
                            generation_cursor& cursor, std::uint64_t count,
                            std::vector<chain::tx_receipt>& out);

}  // namespace leishen::verify
