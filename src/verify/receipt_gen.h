// Seeded synthetic receipt populations for correctness fuzzing.
//
// The scenario layer's `generate_population` executes real DeFi protocol
// code on the simulated chain — high fidelity, but seconds per population
// and only as diverse as the protocol mix. Differential testing and
// invariant fuzzing want the opposite trade-off: thousands of cheap,
// structurally adversarial transactions per second. This generator
// fabricates `tx_receipt`s directly at the trace level (call records,
// internal transactions, event logs) over a small synthetic world of
// creation trees and labels, hitting the corners the protocol simulators
// never produce: dust and near-tolerance pass-through chains, 2^200-scale
// amounts, burn-then-mint adjacency, conflicted tags, multi-provider
// loans, and zero-length bodies.
//
// Everything is a pure function of the seed, so any failure reproduces
// from `(seed, options)` alone — the contract the seed shrinker and the
// regression fixtures rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chain/creation_registry.h"
#include "chain/receipt.h"
#include "etherscan/label_db.h"

namespace leishen::verify {

/// The immutable tagging substrate the generated receipts refer to:
/// labeled provider/pool/router trees, unlabeled attacker trees, one
/// deliberately conflicted tree, WETH, and a token roster. Fixed given the
/// world seed; receipts from any population over the same world seed are
/// mutually consistent.
struct synthetic_world {
  chain::creation_registry creations;
  etherscan::label_db labels;

  address weth_contract;
  chain::asset weth_token;   // asset::token(weth_contract)
  address aave_pool;
  address dydx_solo;

  std::vector<address> pool_contracts;     // labeled-app AMM venues
  std::vector<address> router_contracts;   // pass-through intermediaries
  std::vector<address> borrower_contracts; // unlabeled attack trees
  std::vector<address> user_eoas;          // plain EOAs (pseudo-tag roots)
  address conflicted_contract;             // tree with two labels ("?0x...")
  std::vector<chain::asset> tokens;        // ERC20 roster (excludes WETH)
};

struct generator_options {
  /// Receipts per population.
  int transactions = 32;
  /// Transactions per block (1..block_span receipts share a block number).
  int block_span = 4;
  /// Probability that a transaction is plain non-flash-loan noise (the
  /// prefilter-reject path).
  double noise_fraction = 0.25;
  /// Probability that a flash loan body includes a 2^190..2^250-scale
  /// amount segment (exercises wide arithmetic).
  double huge_amount_fraction = 0.15;
};

struct generated_population {
  std::uint64_t seed = 0;
  /// Owned by the population; receipts reference its addresses and the
  /// engines its registry/labels, so keep it alive alongside them.
  std::shared_ptr<synthetic_world> world;
  std::vector<chain::tx_receipt> receipts;
};

/// The world alone (fixtures re-run shrunken receipts against the same
/// substrate by rebuilding the world from the recorded seed).
[[nodiscard]] std::shared_ptr<synthetic_world> make_world(std::uint64_t seed);

/// A full seeded population: world + receipts.
[[nodiscard]] generated_population generate_receipts(
    std::uint64_t seed, const generator_options& options = {});

}  // namespace leishen::verify
