// The disk / process chaos harness (DESIGN.md §14).
//
// The self-healing fleet promises one thing: whatever dies — a shard at an
// arbitrary watermark, a disk write, an fsync, the whole process — the
// final incident store is bit-identical to a serial scan of the same
// receipts. This harness turns that promise into a seeded, replayable
// property check:
//
//   - `fs_fault_plan` is a `fault_fs::fault_hook` that injects ENOSPC,
//     EIO, short/torn writes and fsync failures at seeded points into
//     every durable writer (feeds, checkpoints, WAL, dead-letter).
//   - `kill_plan` drives the fleet's `post_block_hook`: at seeded block
//     watermarks it throws `service::simulated_kill`, which sails past
//     the monitor's internal restart supervision exactly like SIGKILL —
//     no final checkpoint, no sink flush.
//   - `run_fleet_chaos` runs a population through a supervised fleet
//     under N independent schedules. Each schedule injects kills and disk
//     faults, lets supervision restart / hand off, and — when the run
//     still dies — performs operator restarts (a fresh coordinator
//     resuming from `state_dir`, the kill-the-process-and-relaunch path).
//     Every schedule's final store must enumerate bit-identically to the
//     serial reference; with the WAL enabled, a store rebuilt from the
//     WAL alone must match too.
//   - `run_diff_with_chaos` is the diff engine's `fleet[chaos]` mode: the
//     ordinary cross-engine diff plus the chaos sweep, divergences
//     appended to the same report.
//
// Everything is deterministic from `chaos_options::seed` except thread
// interleaving, which the store's canonical order makes invisible — so a
// failing schedule replays from its seed.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/rng.h"
#include "service/incident_sink.h"
#include "store/incident_store.h"
#include "verify/diff_engine.h"

namespace leishen::verify {

/// Seeded disk-fault schedule. Each write / fsync flowing through
/// `fault_fs` independently faults with the configured probability until
/// `max_faults` faults have fired; an injected write fault is ENOSPC, EIO
/// or a torn write (a random prefix lands, then the op fails) with equal
/// probability. Thread-safe (workers of every shard call concurrently).
class fs_fault_plan final : public fault_fs::fault_hook {
 public:
  fs_fault_plan(rng r, double write_fault_p, double fsync_fault_p,
                std::uint64_t max_faults)
      : rng_{r},
        write_fault_p_{write_fault_p},
        fsync_fault_p_{fsync_fault_p},
        budget_{max_faults} {}

  std::size_t on_write(const std::string& path, std::size_t n,
                       int& err) override;
  bool on_fsync(const std::string& path, int& err) override;

  [[nodiscard]] std::uint64_t writes_seen() const;
  [[nodiscard]] std::uint64_t write_faults() const;
  [[nodiscard]] std::uint64_t torn_writes() const;
  [[nodiscard]] std::uint64_t fsync_faults() const;

 private:
  mutable std::mutex mu_;
  rng rng_;
  double write_fault_p_;
  double fsync_fault_p_;
  std::uint64_t budget_;
  std::uint64_t writes_seen_ = 0;
  std::uint64_t write_faults_ = 0;
  std::uint64_t torn_writes_ = 0;
  std::uint64_t fsync_faults_ = 0;
};

/// Installs a hook for a scope, restoring the previous one on exit.
class scoped_fault_hook {
 public:
  explicit scoped_fault_hook(fault_fs::fault_hook* hook)
      : prev_{fault_fs::set_hook(hook)} {}
  ~scoped_fault_hook() { fault_fs::set_hook(prev_); }

  scoped_fault_hook(const scoped_fault_hook&) = delete;
  scoped_fault_hook& operator=(const scoped_fault_hook&) = delete;

 private:
  fault_fs::fault_hook* prev_;
};

/// Seeded shard killer: picks `kills` distinct block watermarks from the
/// population's span; the fleet hook throws `simulated_kill` when a worker
/// finishes one of them. Each kill point fires exactly once — the restarted
/// shard re-processes the block and must survive it the second time.
/// Thread-safe; shard block ranges are disjoint, so a block identifies its
/// killer uniquely.
class kill_plan {
 public:
  kill_plan(rng r, const std::vector<chain::tx_receipt>& receipts,
            unsigned kills);

  /// The fleet's post_block_hook. Throws service::simulated_kill when
  /// `block` is an unfired kill point.
  void on_block(std::size_t slot, std::uint64_t block);

  [[nodiscard]] std::uint64_t fired() const;
  [[nodiscard]] const std::set<std::uint64_t>& points() const {
    return planned_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::uint64_t> pending_;
  std::set<std::uint64_t> planned_;
  std::uint64_t fired_ = 0;
};

struct chaos_options {
  /// Detection configuration, identical for the fleet and the reference.
  core::scanner_options scan;
  /// Independent seeded schedules to sweep (the acceptance floor is 50).
  unsigned schedules = 8;
  std::uint64_t seed = 0xC4A05;
  /// Root for per-schedule state dirs (`<root>/sched-<i>`, wiped first).
  std::string state_dir;

  // Fleet shape under test.
  unsigned shards = 3;
  int restart_budget = 1;
  std::uint64_t checkpoint_every = 2;
  bool wal = true;
  std::uint64_t heartbeat_interval_ms = 1;
  std::uint64_t backoff_base_ms = 1;

  // Injection intensity.
  unsigned kills_per_schedule = 2;
  double write_fault_p = 0.0;
  double fsync_fault_p = 0.0;
  std::uint64_t max_disk_faults = 4;
  /// Full resume cycles (kill the coordinator, resume from state_dir)
  /// allowed per schedule before it is declared stuck.
  unsigned max_operator_restarts = 4;
};

struct chaos_report {
  unsigned schedules_run = 0;
  std::uint64_t kills_fired = 0;
  std::uint64_t disk_write_faults = 0;
  std::uint64_t disk_fsync_faults = 0;
  /// Supervised in-place shard restarts across all schedules.
  std::uint64_t shard_restarts = 0;
  /// Budget-exhaustion handoffs across all schedules.
  std::uint64_t handoffs = 0;
  /// Coordinator-level resume cycles taken after fatal run errors.
  std::uint64_t operator_restarts = 0;
  /// Stores rebuilt from the WAL alone and compared to the reference.
  std::uint64_t wal_recoveries = 0;
  std::vector<divergence> divergences;

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
};

/// Enumerate a store's active incidents in canonical (block, tx, id) order
/// — the bit-identity comparison surface (store ids are arrival-order and
/// deliberately excluded).
std::vector<service::monitor_incident> dump_store(
    const store::incident_store& store);

/// Run the chaos sweep: `schedules` seeded kill + disk-fault schedules over
/// a supervised fleet, each asserted bit-identical to the serial reference.
/// Receipts must be in chain order and reference accounts of `creations` /
/// `labels` (e.g. a generated_population with its world).
chaos_report run_fleet_chaos(const chain::creation_registry& creations,
                             const etherscan::label_db& labels,
                             chain::asset weth_token,
                             const std::vector<chain::tx_receipt>& receipts,
                             const chaos_options& options);

/// The diff engine's `fleet[chaos]` mode: the ordinary cross-engine diff,
/// plus the chaos sweep with its divergences appended to the same result.
diff_result run_diff_with_chaos(const chain::creation_registry& creations,
                                const etherscan::label_db& labels,
                                chain::asset weth_token,
                                const std::vector<chain::tx_receipt>& receipts,
                                const diff_options& diff_opts,
                                const chaos_options& chaos_opts);

}  // namespace leishen::verify
