#include "verify/chaos.h"

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <stdexcept>

#include "fleet/shard_coordinator.h"
#include "service/monitor_service.h"
#include "store/store_sink.h"
#include "store/wal.h"

namespace leishen::verify {

std::size_t fs_fault_plan::on_write(const std::string& path, std::size_t n,
                                    int& err) {
  (void)path;
  const std::lock_guard lk{mu_};
  ++writes_seen_;
  if (budget_ == 0 || n == 0 || !rng_.next_bool(write_fault_p_)) return n;
  --budget_;
  ++write_faults_;
  switch (rng_.next_below(3)) {
    case 0:
      err = ENOSPC;
      return 0;
    case 1:
      err = EIO;
      return 0;
    default:
      // Torn write: a random proper prefix lands before the failure — the
      // crash footprint the recovery readers must truncate away.
      ++torn_writes_;
      err = EIO;
      return static_cast<std::size_t>(rng_.next_below(n));
  }
}

bool fs_fault_plan::on_fsync(const std::string& path, int& err) {
  (void)path;
  const std::lock_guard lk{mu_};
  if (budget_ == 0 || !rng_.next_bool(fsync_fault_p_)) return false;
  --budget_;
  ++fsync_faults_;
  err = EIO;
  return true;
}

std::uint64_t fs_fault_plan::writes_seen() const {
  const std::lock_guard lk{mu_};
  return writes_seen_;
}
std::uint64_t fs_fault_plan::write_faults() const {
  const std::lock_guard lk{mu_};
  return write_faults_;
}
std::uint64_t fs_fault_plan::torn_writes() const {
  const std::lock_guard lk{mu_};
  return torn_writes_;
}
std::uint64_t fs_fault_plan::fsync_faults() const {
  const std::lock_guard lk{mu_};
  return fsync_faults_;
}

kill_plan::kill_plan(rng r, const std::vector<chain::tx_receipt>& receipts,
                     unsigned kills) {
  std::vector<std::uint64_t> blocks;
  for (const chain::tx_receipt& rc : receipts) {
    if (blocks.empty() || blocks.back() != rc.block_number) {
      blocks.push_back(rc.block_number);
    }
  }
  // Sample without replacement; fewer distinct blocks than kills just
  // means every block is a kill point.
  while (planned_.size() < kills && planned_.size() < blocks.size()) {
    planned_.insert(blocks[r.next_below(blocks.size())]);
  }
  pending_ = planned_;
}

void kill_plan::on_block(std::size_t slot, std::uint64_t block) {
  (void)slot;
  {
    const std::lock_guard lk{mu_};
    const auto it = pending_.find(block);
    if (it == pending_.end()) return;
    pending_.erase(it);
    ++fired_;
  }
  throw service::simulated_kill{block};
}

std::uint64_t kill_plan::fired() const {
  const std::lock_guard lk{mu_};
  return fired_;
}

std::vector<service::monitor_incident> dump_store(
    const store::incident_store& store) {
  std::vector<service::monitor_incident> out;
  store::incident_filter all;
  std::optional<store::incident_key> after;
  for (;;) {
    const store::incident_page page = store.query(all, after, 256);
    for (const store::stored_incident& s : page.items) {
      out.push_back(s.incident);
    }
    if (!page.has_more) break;
    after = page.next;
  }
  return out;
}

namespace {

/// Serial reference: the same receipts through one unsupervised monitor
/// into a fresh store — the stream every chaos schedule must reproduce.
std::vector<service::monitor_incident> serial_reference(
    const chain::creation_registry& creations,
    const etherscan::label_db& labels, chain::asset weth_token,
    const std::vector<chain::tx_receipt>& receipts,
    const core::scanner_options& scan) {
  store::incident_store store;
  service::metrics_registry metrics;
  service::monitor_options mopts;
  mopts.scan = scan;
  service::monitor_service monitor{creations, labels, weth_token, metrics,
                                   std::move(mopts)};
  store::store_sink sink{store};
  monitor.add_sink(sink);
  service::simulated_block_source source{receipts};
  monitor.run(source);
  return dump_store(store);
}

/// First difference between a schedule's store dump and the reference,
/// reported as one divergence (the schedules are independent; one finding
/// per schedule keeps the report actionable).
std::optional<divergence> compare_dumps(
    const std::string& engine,
    const std::vector<service::monitor_incident>& reference,
    const std::vector<service::monitor_incident>& got) {
  const std::size_t n = std::min(reference.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (got[i] == reference[i]) continue;
    divergence d;
    d.engine = engine;
    d.field = "store.incident";
    d.block_number = reference[i].block_number;
    d.tx_index = reference[i].incident.tx_index;
    d.detail = "incident " + std::to_string(i) + " differs from reference" +
               " (ref block=" + std::to_string(reference[i].block_number) +
               " tx=" + std::to_string(reference[i].incident.tx_index) +
               ", got block=" + std::to_string(got[i].block_number) +
               " tx=" + std::to_string(got[i].incident.tx_index) +
               "; sizes ref=" + std::to_string(reference.size()) +
               " got=" + std::to_string(got.size()) + ")";
    return d;
  }
  if (reference.size() != got.size()) {
    divergence d;
    d.engine = engine;
    d.field = "store.size";
    d.detail = "reference has " + std::to_string(reference.size()) +
               " active incidents, store has " + std::to_string(got.size());
    return d;
  }
  return std::nullopt;
}

}  // namespace

chaos_report run_fleet_chaos(const chain::creation_registry& creations,
                             const etherscan::label_db& labels,
                             chain::asset weth_token,
                             const std::vector<chain::tx_receipt>& receipts,
                             const chaos_options& options) {
  if (options.state_dir.empty()) {
    throw std::invalid_argument{"chaos: state_dir is required"};
  }
  chaos_report report;
  const std::vector<service::monitor_incident> reference = serial_reference(
      creations, labels, weth_token, receipts, options.scan);
  const rng root{options.seed};

  for (unsigned s = 0; s < options.schedules; ++s) {
    const std::string label =
        "fleet[chaos schedule=" + std::to_string(s) + "]";
    const std::string dir =
        options.state_dir + "/sched-" + std::to_string(s);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    const rng schedule_rng = root.fork(s + 1);
    kill_plan kills{schedule_rng.fork(1), receipts,
                    options.kills_per_schedule};
    fs_fault_plan disk{schedule_rng.fork(2), options.write_fault_p,
                      options.fsync_fault_p, options.max_disk_faults};
    const scoped_fault_hook install{&disk};

    // Operator loop: each attempt is one coordinator lifetime — the
    // process-level crash/relaunch cycle. Supervision absorbs what it can
    // inside an attempt; a fatal run error costs an operator restart.
    bool completed = false;
    for (unsigned attempt = 0;
         attempt <= options.max_operator_restarts && !completed; ++attempt) {
      store::incident_store store;
      fleet::fleet_options fopts;
      fopts.shards = options.shards;
      fopts.scan = options.scan;
      fopts.checkpoint_every = options.checkpoint_every;
      fopts.state_dir = dir;
      fopts.restart_budget = options.restart_budget;
      fopts.heartbeat_interval_ms = options.heartbeat_interval_ms;
      fopts.backoff_base_ms = options.backoff_base_ms;
      fopts.wal = options.wal;
      fopts.post_block_hook = [&kills](std::size_t slot,
                                       std::uint64_t block) {
        kills.on_block(slot, block);
      };
      fleet::shard_coordinator fleet{creations, labels,    weth_token,
                                     receipts,  store,     fopts};
      try {
        fleet.resume();
        fleet.run();
        completed = true;
      } catch (...) {
        ++report.operator_restarts;
      }
      report.shard_restarts += fleet.restarts();
      report.handoffs += fleet.handoffs();

      if (completed) {
        if (auto d = compare_dumps(label, reference, dump_store(store))) {
          report.divergences.push_back(std::move(*d));
        }
      }
    }
    if (!completed) {
      divergence d;
      d.engine = label;
      d.field = "run";
      d.detail = "schedule did not complete within " +
                 std::to_string(options.max_operator_restarts) +
                 " operator restarts";
      report.divergences.push_back(std::move(d));
    } else if (options.wal) {
      // Crash-consistency of the log itself: a store rebuilt from the WAL
      // alone — no feeds, no checkpoints — must also match the reference.
      store::incident_store rebuilt;
      try {
        store::recover_wal(dir + "/wal", rebuilt);
        ++report.wal_recoveries;
        if (auto d = compare_dumps(label + " wal-rebuild", reference,
                                   dump_store(rebuilt))) {
          report.divergences.push_back(std::move(*d));
        }
      } catch (const std::exception& e) {
        divergence d;
        d.engine = label;
        d.field = "wal";
        d.detail = std::string{"WAL recovery failed: "} + e.what();
        report.divergences.push_back(std::move(d));
      }
    }

    report.kills_fired += kills.fired();
    report.disk_write_faults += disk.write_faults();
    report.disk_fsync_faults += disk.fsync_faults();
    ++report.schedules_run;
    std::filesystem::remove_all(dir, ec);
  }
  return report;
}

diff_result run_diff_with_chaos(const chain::creation_registry& creations,
                                const etherscan::label_db& labels,
                                chain::asset weth_token,
                                const std::vector<chain::tx_receipt>& receipts,
                                const diff_options& diff_opts,
                                const chaos_options& chaos_opts) {
  const diff_engine engine{creations, labels, weth_token, diff_opts};
  diff_result result = engine.run(receipts);
  const chaos_report chaos =
      run_fleet_chaos(creations, labels, weth_token, receipts, chaos_opts);
  for (const divergence& d : chaos.divergences) {
    result.divergences.push_back(d);
  }
  return result;
}

}  // namespace leishen::verify
