#include "verify/diff_engine.h"

#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include <algorithm>
#include <set>

#include "core/parallel_scanner.h"
#include "service/block_source.h"
#include "service/dead_letter.h"
#include "service/fault_injection.h"
#include "service/incident_sink.h"
#include "service/metrics.h"
#include "service/monitor_service.h"
#include "service/resilient_block_source.h"

namespace leishen::verify {
namespace {

using core::incident;
using core::scan_stats;

/// Name of the first differing stats field, if any.
std::optional<std::string> diff_stats(const scan_stats& a,
                                      const scan_stats& b) {
  if (a.transactions != b.transactions) return "stats.transactions";
  if (a.flash_loans != b.flash_loans) return "stats.flash_loans";
  for (int i = 0; i < 3; ++i) {
    if (a.per_provider[i] != b.per_provider[i]) {
      return "stats.per_provider." + std::to_string(i);
    }
  }
  if (a.incidents != b.incidents) return "stats.incidents";
  for (int i = 0; i < 3; ++i) {
    if (a.per_pattern[i] != b.per_pattern[i]) {
      return "stats.per_pattern." + std::to_string(i);
    }
  }
  if (a.suppressed_by_heuristic != b.suppressed_by_heuristic) {
    return "stats.suppressed_by_heuristic";
  }
  if (a.prefilter_rejects != b.prefilter_rejects) {
    return "stats.prefilter_rejects";
  }
  if (a.prefilter_accepts != b.prefilter_accepts) {
    return "stats.prefilter_accepts";
  }
  return std::nullopt;
}

/// Name of the first differing incident field, if any.
std::optional<std::string> diff_incident(const incident& a,
                                         const incident& b) {
  if (a.tx_index != b.tx_index) return "incident.tx_index";
  if (a.timestamp != b.timestamp) return "incident.timestamp";
  if (a.borrower_tag != b.borrower_tag) return "incident.borrower_tag";
  if (a.matches != b.matches) return "incident.matches";
  if (a.max_volatility_pct != b.max_volatility_pct) {
    return "incident.max_volatility_pct";
  }
  return std::nullopt;
}

class stream_differ {
 public:
  stream_differ(std::string engine, const diff_result& reference,
                const std::unordered_map<std::uint64_t, std::uint64_t>&
                    tx_to_block,
                std::vector<divergence>& out)
      : engine_{std::move(engine)},
        reference_{reference},
        tx_to_block_{tx_to_block},
        out_{out} {}

  [[nodiscard]] bool diverged() const noexcept { return diverged_; }

  std::uint64_t block_of(std::uint64_t tx_index) const {
    const auto it = tx_to_block_.find(tx_index);
    return it == tx_to_block_.end() ? 0 : it->second;
  }

  void report(std::string field, std::uint64_t block, std::uint64_t tx,
              std::string detail) {
    if (diverged_) return;  // first divergence only
    diverged_ = true;
    out_.push_back(divergence{.engine = engine_,
                              .field = std::move(field),
                              .block_number = block,
                              .tx_index = tx,
                              .detail = std::move(detail)});
  }

  /// Compare a full incident stream against the reference.
  void compare_stream(const std::vector<incident>& got) {
    const auto& want = reference_.reference_incidents;
    const std::size_t n = std::min(want.size(), got.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (const auto field = diff_incident(want[i], got[i])) {
        std::ostringstream os;
        os << "incident #" << i << " differs";
        report(*field, block_of(want[i].tx_index), want[i].tx_index,
               os.str());
        return;
      }
    }
    if (want.size() != got.size()) {
      std::ostringstream os;
      os << "incident count " << got.size() << " vs reference "
         << want.size();
      const std::uint64_t tx =
          want.size() > n ? want[n].tx_index
                          : (got.size() > n ? got[n].tx_index : 0);
      report("incident.count", block_of(tx), tx, os.str());
    }
  }

  void compare_stats(const scan_stats& got) {
    if (const auto field = diff_stats(reference_.reference_stats, got)) {
      report(*field, 0, 0, "cumulative counters differ");
    }
  }

 private:
  std::string engine_;
  const diff_result& reference_;
  const std::unordered_map<std::uint64_t, std::uint64_t>& tx_to_block_;
  std::vector<divergence>& out_;
  bool diverged_ = false;
};

}  // namespace

diff_engine::diff_engine(const chain::creation_registry& creations,
                         const etherscan::label_db& labels,
                         chain::asset weth_token, diff_options options)
    : creations_{creations},
      labels_{labels},
      weth_{weth_token},
      options_{std::move(options)} {}

diff_result diff_engine::run(
    const std::vector<chain::tx_receipt>& receipts) const {
  diff_result result;

  std::unordered_map<std::uint64_t, std::uint64_t> tx_to_block;
  tx_to_block.reserve(receipts.size());
  for (const chain::tx_receipt& rec : receipts) {
    tx_to_block.emplace(rec.tx_index, rec.block_number);
  }

  // Reference: the serial engine.
  {
    core::scanner serial{creations_, labels_, weth_, options_.scan};
    serial.scan_all(receipts, nullptr);
    result.reference_stats = serial.stats();
    result.reference_incidents = serial.incidents();
  }

  // Parallel engine across the thread/chunk grid.
  for (const engine_config& cfg : options_.parallel_configs) {
    std::ostringstream name;
    name << "parallel[threads=" << cfg.threads << ",chunk=" << cfg.chunk_size
         << "]";
    stream_differ differ{name.str(), result, tx_to_block,
                         result.divergences};

    core::parallel_scanner_options popts;
    popts.scan = options_.scan;
    popts.threads = cfg.threads;
    popts.chunk_size = cfg.chunk_size;
    core::parallel_scanner par{creations_, labels_, weth_, popts};
    par.scan_all(receipts);

    differ.compare_stream(par.incidents());
    if (!differ.diverged()) differ.compare_stats(par.stats());
  }

  // Streaming monitor: producer -> bounded queue -> detection worker.
  if (options_.include_monitor) {
    stream_differ differ{"monitor", result, tx_to_block, result.divergences};

    service::metrics_registry metrics;
    service::monitor_options mopts;
    mopts.scan = options_.scan;
    mopts.queue_capacity = options_.monitor_queue_capacity;
    mopts.drop_when_full = false;  // lossless: streams must match exactly

    std::vector<service::monitor_incident> streamed;
    service::callback_sink sink{[&streamed](
                                    const service::monitor_incident& mi) {
      streamed.push_back(mi);
    }};

    service::monitor_service monitor{creations_, labels_, weth_, metrics,
                                     mopts};
    monitor.add_sink(sink);
    service::simulated_block_source source{receipts};
    monitor.run(source);

    std::vector<incident> stream;
    stream.reserve(streamed.size());
    for (const service::monitor_incident& mi : streamed) {
      stream.push_back(mi.incident);
    }
    differ.compare_stream(stream);

    // Block attribution: every emitted incident must carry the block its
    // transaction actually lives in.
    if (!differ.diverged()) {
      for (const service::monitor_incident& mi : streamed) {
        const std::uint64_t expect = differ.block_of(mi.incident.tx_index);
        if (mi.block_number != expect) {
          std::ostringstream os;
          os << "incident block " << mi.block_number << " vs receipt block "
             << expect;
          differ.report("incident.block_number", expect, mi.incident.tx_index,
                        os.str());
          break;
        }
      }
    }
    if (!differ.diverged()) differ.compare_stats(monitor.stats());
  }

  // Fault-injected monitor: same detection contract under a hostile
  // ingestion path. The stack is sim -> fault injector -> resilient
  // wrapper (with a permanently dead preferred upstream, forcing failover
  // and an open circuit) -> monitor. Reorg retractions are collapsed out
  // of the stream before comparing, so a divergence here means a fault
  // actually leaked into detection output.
  if (options_.include_monitor && options_.include_faults) {
    stream_differ differ{"monitor[faults]", result, tx_to_block,
                         result.divergences};

    service::metrics_registry metrics;
    service::monitor_options mopts;
    mopts.scan = options_.scan;
    mopts.queue_capacity = options_.monitor_queue_capacity;
    mopts.drop_when_full = false;  // lossless: streams must match exactly
    mopts.reorg_journal_depth = 16;
    service::dead_letter_recorder dead;
    mopts.dead_letter = &dead;

    std::vector<service::monitor_incident> streamed;
    service::callback_sink sink{
        [&streamed](const service::monitor_incident& mi) {
          streamed.push_back(mi);
        },
        [&streamed](const service::monitor_incident& mi) {
          // Retractions arrive newest-first; drop the latest match.
          for (std::size_t i = streamed.size(); i-- > 0;) {
            if (streamed[i] == mi) {
              streamed.erase(streamed.begin() +
                             static_cast<std::ptrdiff_t>(i));
              return;
            }
          }
        }};

    service::simulated_block_source base{receipts};
    service::fault_injection_options fopts;
    fopts.seed = options_.fault_seed;
    fopts.timeout_rate = 0.08;
    fopts.error_rate = 0.08;
    fopts.duplicate_rate = 0.10;
    fopts.reorder_rate = 0.08;
    fopts.reorg_rate = 0.06;
    fopts.max_reorg_depth = 3;
    fopts.poison_rate = 0.10;
    service::fault_injecting_block_source faulty{base, fopts};
    service::broken_block_source broken;

    service::resilient_source_options ropts;
    ropts.seed = options_.fault_seed ^ 0xC1DCu;
    ropts.max_retries = 3;
    ropts.circuit_failure_threshold = 3;  // opens on the dead upstream
    ropts.sleeper = [](std::chrono::microseconds) {};  // no real waiting
    service::resilient_block_source source{{&broken, &faulty}, ropts,
                                           &metrics};

    service::monitor_service monitor{creations_, labels_, weth_, metrics,
                                     mopts};
    monitor.add_sink(sink);
    monitor.run(source);

    std::vector<incident> stream;
    stream.reserve(streamed.size());
    for (const service::monitor_incident& mi : streamed) {
      stream.push_back(mi.incident);
    }
    differ.compare_stream(stream);
    if (!differ.diverged()) differ.compare_stats(monitor.stats());

    // Exact quarantine accounting: the dead-letter channel holds injected
    // poisons and nothing else, and no injected poison slipped through.
    // Re-deliveries (reorgs) may quarantine the same receipt again, so the
    // comparison is by set of (block, tx).
    if (!differ.diverged()) {
      std::set<std::pair<std::uint64_t, std::uint64_t>> injected(
          faulty.poisons_injected().begin(), faulty.poisons_injected().end());
      std::set<std::pair<std::uint64_t, std::uint64_t>> quarantined;
      for (const service::dead_letter_entry& e : dead.entries()) {
        quarantined.emplace(e.block_number, e.tx_index);
      }
      if (injected != quarantined) {
        std::ostringstream os;
        os << "dead-letter set has " << quarantined.size()
           << " distinct receipts vs " << injected.size() << " injected";
        differ.report("dead_letter.accounting", 0, 0, os.str());
      }
    }
  }

  return result;
}

}  // namespace leishen::verify
