#include "verify/receipt_gen.h"

#include <utility>

#include "common/rng.h"

namespace leishen::verify {
namespace {

using chain::asset;
using chain::call_record;
using chain::event_log;
using chain::internal_tx;
using chain::tx_receipt;

/// ERC20 Transfer log — the token-transfer unit `extract_transfers` lifts.
void emit_transfer(tx_receipt& rec, const asset& token, const address& from,
                   const address& to, const u256& amount) {
  rec.events.push_back(event_log{.emitter = token.contract_address(),
                                 .name = chain::kTransferEvent,
                                 .addr0 = from,
                                 .addr1 = to,
                                 .amount0 = amount});
}

void emit_ether(tx_receipt& rec, const address& from, const address& to,
                const u256& amount) {
  rec.events.push_back(internal_tx{.from = from, .to = to, .amount = amount});
}

void emit_call(tx_receipt& rec, const address& caller, const address& callee,
               std::string method) {
  rec.events.push_back(call_record{
      .caller = caller, .callee = callee, .method = std::move(method)});
}

/// Amount distribution: mostly token-unit scale, a dust band, and (with
/// `huge_frac` probability) a 2^190..2^240 band that forces every
/// comparison in the pipeline through the wide-arithmetic paths. The cap at
/// 2^241 keeps even pathological per-(party, token) sums inside u256.
u256 rand_amount(rng& t, double huge_frac) {
  const double c = t.next_double();
  if (c < huge_frac) {
    const auto bits = static_cast<unsigned>(t.next_range(190, 240));
    return (u256{1} << bits) | u256{t.next(), t.next(), 0, 0};
  }
  if (c < huge_frac + 0.15) return u256{t.next_range(1, 1000)};  // dust
  return units(t.next_range(1, 1000000),
               static_cast<unsigned>(t.next_range(6, 18)));
}

template <typename T>
const T& pick(rng& t, const std::vector<T>& v) {
  return v[t.next_below(v.size())];
}

/// Everything one transaction's synthesis needs in one place.
struct tx_ctx {
  const synthetic_world& w;
  rng& t;
  tx_receipt& rec;
  address borrower;      // attack contract of this transaction
  double huge_frac = 0.0;

  u256 amount() { return rand_amount(t, huge_frac); }
  const address& pool() { return pick(t, w.pool_contracts); }
  const address& router() { return pick(t, w.router_contracts); }
  const address& user() { return pick(t, w.user_eoas); }
  const asset& token() { return pick(t, w.tokens); }
};

// ---- body shapes ------------------------------------------------------------
// Each shape appends a few trace events; together they cover the transfer
// configurations every pipeline stage branches on.

/// Plain two-transfer swap: borrower pays quote to a pool, pool pays back X.
void shape_swap(tx_ctx& c) {
  const address pool = c.pool();
  const asset a = c.token();
  asset b = c.token();
  while (b == a) b = c.token();
  emit_transfer(c.rec, a, c.borrower, pool, c.amount());
  emit_transfer(c.rec, b, pool, c.borrower, c.amount());
}

/// A KRP-shaped burst: n buys of X from one pool at rising prices, then a
/// sell — n straddles the krp_min_buys threshold so populations land on
/// both sides of it.
void shape_krp_burst(tx_ctx& c) {
  const address pool = c.pool();
  const asset x = c.token();
  asset quote = c.token();
  while (quote == x) quote = c.token();
  const auto n = static_cast<int>(c.t.next_range(4, 7));
  const u256 unit = units(c.t.next_range(1, 50), 15);
  u256 paid = unit;
  u256 total_x;
  for (int i = 0; i < n; ++i) {
    const u256 got = unit;  // fixed amount out, rising amount in = rising price
    emit_transfer(c.rec, quote, c.borrower, pool, paid);
    emit_transfer(c.rec, x, pool, c.borrower, got);
    total_x += got;
    paid += unit / 4 + u256{1};
  }
  emit_transfer(c.rec, x, c.borrower, pool, total_x);
  emit_transfer(c.rec, quote, pool, c.borrower,
                paid * u256{static_cast<std::uint64_t>(n)});
}

/// Pass-through routing: src -> router(s) -> dst with the out-amount landing
/// exactly at, just inside, or outside the 0.1% merge tolerance.
void shape_pass_through(tx_ctx& c) {
  const asset tok = c.token();
  const address src = c.t.next_bool(0.5) ? c.borrower : c.user();
  const address dst = c.pool();
  const u256 in = c.amount();
  u256 out = in;
  switch (c.t.next_below(5)) {
    case 0:
      break;  // exact pass-through
    case 1:   // well inside tolerance
      if (in > u256{4000}) out = in - in / u256{4000};
      break;
    case 2:  // exactly 0.1% off: NOT close (strict <), must not merge
      if (in > u256{1000}) out = in - in / u256{1000};
      break;
    case 3:  // one below the boundary: closest mergeable amount
      if (in > u256{1000} && !(in / u256{1000}).is_zero()) {
        out = in - (in / u256{1000} - u256{1});
      }
      break;
    default:  // way off: a real trade leg, not routing
      out = in / u256{3} + u256{1};
      break;
  }
  const address r1 = c.router();
  if (c.t.next_bool(0.3)) {  // two-hop chain through both routers
    const address r2 = c.router();
    emit_transfer(c.rec, tok, src, r1, in);
    emit_transfer(c.rec, tok, r1, r2, in);
    emit_transfer(c.rec, tok, r2, dst, out);
  } else {
    emit_transfer(c.rec, tok, src, r1, in);
    emit_transfer(c.rec, tok, r1, dst, out);
  }
}

/// Wrap/unwrap plumbing: Ether to the WETH contract, WETH token back (or the
/// reverse) — rule 2 must delete all of it.
void shape_wrap(tx_ctx& c) {
  const address party = c.t.next_bool(0.5) ? c.borrower : c.user();
  const u256 amt = c.amount();
  if (c.t.next_bool(0.5)) {
    emit_ether(c.rec, party, c.w.weth_contract, amt);
    emit_transfer(c.rec, c.w.weth_token, c.w.weth_contract, party, amt);
  } else {
    emit_transfer(c.rec, c.w.weth_token, party, c.w.weth_contract, amt);
    emit_ether(c.rec, c.w.weth_contract, party, amt);
  }
}

/// Mint/burn traffic, including the adversarial adjacency: a burn to the
/// BlackHole immediately followed by a mint from it in the same token with
/// near-equal amounts — mint/burn evidence the merge rule must not eat.
void shape_mint_burn(tx_ctx& c) {
  const asset tok = c.token();
  const u256 amt = c.amount();
  switch (c.t.next_below(3)) {
    case 0:  // mint to a party
      emit_transfer(c.rec, tok, address::zero(), c.borrower, amt);
      break;
    case 1:  // burn from a party
      emit_transfer(c.rec, tok, c.user(), address::zero(), amt);
      break;
    default: {  // burn then adjacent mint, amounts within tolerance
      const address a = c.t.next_bool(0.5) ? c.borrower : c.user();
      address b = c.pool();
      u256 minted = amt;
      if (amt > u256{4000}) minted = amt - amt / u256{4000};
      emit_transfer(c.rec, tok, a, address::zero(), amt);
      emit_transfer(c.rec, tok, address::zero(), b, minted);
      break;
    }
  }
}

/// Liquidity round trip: pay a pool, LP token minted from BlackHole (mint
/// kind), or burn LP and receive from the pool (remove kind).
void shape_liquidity(tx_ctx& c) {
  const address pool = c.pool();
  const asset tok = c.token();
  asset lp = c.token();
  while (lp == tok) lp = c.token();
  const u256 amt = c.amount();
  const u256 shares = c.amount();
  if (c.t.next_bool(0.5)) {
    emit_transfer(c.rec, tok, c.borrower, pool, amt);
    emit_transfer(c.rec, lp, address::zero(), c.borrower, shares);
  } else {
    emit_transfer(c.rec, lp, c.borrower, address::zero(), shares);
    emit_transfer(c.rec, tok, pool, c.borrower, amt);
  }
}

/// Noise the simplifier must delete or that extraction must drop: intra-app
/// legs, zero-amount logs, transfers touching the conflicted tree.
void shape_noise_legs(tx_ctx& c) {
  switch (c.t.next_below(4)) {
    case 0: {  // intra-app: two pools of the same factory (adjacent in list)
      const std::size_t app = c.t.next_below(c.w.pool_contracts.size() / 2);
      emit_transfer(c.rec, c.token(), c.w.pool_contracts[2 * app],
                    c.w.pool_contracts[2 * app + 1], c.amount());
      break;
    }
    case 1:  // zero-amount log: extract_transfers drops it
      emit_transfer(c.rec, c.token(), c.user(), c.pool(), u256{});
      break;
    case 2:  // conflicted-tag party in the flow
      emit_transfer(c.rec, c.token(), c.user(), c.w.conflicted_contract,
                    c.amount());
      emit_transfer(c.rec, c.token(), c.w.conflicted_contract, c.pool(),
                    c.amount());
      break;
    default:  // raw Ether between parties
      emit_ether(c.rec, c.user(), c.pool(), c.amount());
      break;
  }
}

void emit_body_shapes(tx_ctx& c, int count) {
  for (int i = 0; i < count; ++i) {
    switch (c.t.next_weighted({3, 2, 3, 2, 3, 2, 3})) {
      case 0:
        shape_swap(c);
        break;
      case 1:
        shape_krp_burst(c);
        break;
      case 2:
        shape_pass_through(c);
        break;
      case 3:
        shape_wrap(c);
        break;
      case 4:
        shape_mint_burn(c);
        break;
      case 5:
        shape_liquidity(c);
        break;
      default:
        shape_noise_legs(c);
        break;
    }
  }
}

// ---- flash loan triggers ----------------------------------------------------

void emit_uniswap_loan(tx_ctx& c, const asset& tok, const u256& amt) {
  const address pair = c.pool();
  emit_call(c.rec, c.borrower, pair, "swap");
  emit_transfer(c.rec, tok, pair, c.borrower, amt);
  emit_call(c.rec, pair, c.borrower, "uniswapV2Call");
  // Deferred repayment with the 0.3% flash-swap premium.
  emit_transfer(c.rec, tok, c.borrower, pair, amt + amt / u256{333} + u256{1});
}

void emit_aave_loan(tx_ctx& c, const asset& tok, const u256& amt) {
  c.rec.events.push_back(event_log{.emitter = c.w.aave_pool,
                                   .name = "FlashLoan",
                                   .addr0 = c.borrower,
                                   .addr1 = tok.contract_address(),
                                   .amount0 = amt});
  emit_transfer(c.rec, tok, c.w.aave_pool, c.borrower, amt);
  emit_transfer(c.rec, tok, c.borrower, c.w.aave_pool,
                amt + amt / u256{1111} + u256{1});
}

/// The four-event dYdX batch; `complete == false` stops after LogCall so the
/// prefilter fires but full identification (correctly) rejects.
void emit_dydx_loan(tx_ctx& c, const asset& tok, const u256& amt,
                    bool complete) {
  const address solo = c.w.dydx_solo;
  c.rec.events.push_back(
      event_log{.emitter = solo, .name = "LogOperation", .addr0 = c.borrower});
  c.rec.events.push_back(event_log{.emitter = solo,
                                   .name = "LogWithdraw",
                                   .addr0 = c.borrower,
                                   .addr1 = tok.contract_address(),
                                   .amount0 = amt});
  emit_transfer(c.rec, tok, solo, c.borrower, amt);
  c.rec.events.push_back(
      event_log{.emitter = solo, .name = "LogCall", .addr0 = c.borrower});
  if (!complete) return;
  emit_transfer(c.rec, tok, c.borrower, solo, amt + u256{2});
  c.rec.events.push_back(
      event_log{.emitter = solo, .name = "LogDeposit", .addr0 = c.borrower});
}

}  // namespace

std::shared_ptr<synthetic_world> make_world(std::uint64_t seed) {
  auto w = std::make_shared<synthetic_world>();
  rng r = rng{seed}.fork(0x57A11D);
  auto fresh = [&r] { return address::from_seed(r.next()); };

  const address weth_deployer = fresh();
  w->weth_contract = fresh();
  w->creations.record(weth_deployer, w->weth_contract);
  w->labels.tag(w->weth_contract, "Wrapped Ether");
  w->weth_token = chain::asset::token(w->weth_contract);

  w->aave_pool = fresh();
  w->creations.record(fresh(), w->aave_pool);
  w->labels.tag(w->aave_pool, "AAVE");

  w->dydx_solo = fresh();
  w->creations.record(fresh(), w->dydx_solo);
  w->labels.tag(w->dydx_solo, "dYdX");

  // Pool apps with realistic partial label coverage: only the factory is
  // labeled; tagging must recover the pools through the creation tree.
  for (int app = 0; app < 3; ++app) {
    const address root = fresh();
    const address factory = fresh();
    w->creations.record(root, factory);
    w->labels.tag(factory, "DEX-" + std::to_string(app));
    for (int p = 0; p < 2; ++p) {
      const address pool = fresh();
      w->creations.record(factory, pool);
      w->pool_contracts.push_back(pool);
    }
  }

  for (int i = 0; i < 2; ++i) {
    const address router = fresh();
    w->creations.record(fresh(), router);
    w->labels.tag(router, "Aggregator-" + std::to_string(i));
    w->router_contracts.push_back(router);
  }

  // Unlabeled attacker trees: EOA root -> attack contract. The tag the
  // pipeline derives is the root's address pseudo-tag.
  for (int i = 0; i < 3; ++i) {
    const address eoa = fresh();
    const address attack = fresh();
    w->creations.record(eoa, attack);
    w->borrower_contracts.push_back(attack);
  }

  // A creation chain carrying two different labels: every descendant below
  // both is untaggable (conflict tag).
  {
    const address root = fresh();
    const address c1 = fresh();
    const address c2 = fresh();
    w->conflicted_contract = fresh();
    w->creations.record(root, c1);
    w->creations.record(c1, c2);
    w->creations.record(c2, w->conflicted_contract);
    w->labels.tag(c1, "ConfA");
    w->labels.tag(c2, "ConfB");
  }

  for (int i = 0; i < 6; ++i) w->user_eoas.push_back(fresh());
  for (int i = 0; i < 6; ++i) {
    w->tokens.push_back(chain::asset::token(fresh()));
  }
  return w;
}

namespace {

int next_span(rng& r, const generator_options& options) {
  return static_cast<int>(
      r.next_range(1, static_cast<std::uint64_t>(
                          options.block_span < 1 ? 1 : options.block_span)));
}

}  // namespace

generation_cursor start_generation(std::uint64_t seed,
                                   const generator_options& options) {
  generation_cursor cur{.block_stream = rng{seed}.fork(0x6E47),
                        .next_tx_index = 1,
                        .block = 1000000 + seed % 997,
                        .left_in_block = 0};
  cur.left_in_block = next_span(cur.block_stream, options);
  return cur;
}

void generate_receipts_into(const synthetic_world& w,
                            const generator_options& options,
                            generation_cursor& cursor, std::uint64_t count,
                            std::vector<tx_receipt>& out) {
  rng& r = cursor.block_stream;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t i = cursor.next_tx_index - 1;  // 0-based global index
    rng t = r.fork(0x10000 + i);
    tx_receipt rec;
    rec.tx_index = i + 1;
    rec.block_number = cursor.block;
    rec.timestamp =
        1600000000 + static_cast<std::int64_t>(cursor.block) * 12;
    rec.success = true;
    if (--cursor.left_in_block == 0) {
      cursor.block += 1 + r.next_below(3);
      cursor.left_in_block = next_span(r, options);
    }

    tx_ctx c{.w = w,
             .t = t,
             .rec = rec,
             .borrower = pick(t, w.borrower_contracts),
             .huge_frac = options.huge_amount_fraction};
    rec.from = pick(t, w.user_eoas);
    rec.to = c.borrower;

    const bool reverted = t.next_bool(0.05);
    if (options.plain_transfer_fraction > 0 &&
        t.next_bool(options.plain_transfer_fraction)) {
      // Ordinary bulk traffic: one ERC20 transfer, nothing for any pipeline
      // stage to chew on. The fraction guard keeps this branch draw-free at
      // the default 0, preserving legacy populations bit for bit.
      rec.description = "transfer";
      emit_transfer(rec, c.token(), rec.from, c.user(), c.amount());
    } else if (t.next_bool(options.noise_fraction)) {
      // Non-flash-loan traffic: the prefilter-reject path. One variant
      // carries a truncated dYdX batch — prefilter-accepted, then rejected
      // by full identification.
      rec.description = "noise";
      if (t.next_bool(0.2)) {
        emit_dydx_loan(c, c.token(), c.amount(), /*complete=*/false);
      } else if (t.next_bool(0.3)) {
        emit_call(rec, rec.from, c.pool(), "swap");
      }
      emit_body_shapes(c, static_cast<int>(t.next_range(1, 3)));
    } else {
      rec.description = "flash loan";
      const asset loan_tok = c.token();
      const u256 loan_amt = c.amount();
      switch (t.next_below(4)) {
        case 0:
          emit_uniswap_loan(c, loan_tok, loan_amt);
          break;
        case 1:
          emit_aave_loan(c, loan_tok, loan_amt);
          break;
        case 2:
          emit_dydx_loan(c, loan_tok, loan_amt, /*complete=*/true);
          break;
        default:  // multi-provider batch in one transaction
          emit_aave_loan(c, loan_tok, loan_amt);
          emit_dydx_loan(c, c.token(), c.amount(), /*complete=*/true);
          break;
      }
      emit_body_shapes(c, static_cast<int>(t.next_range(1, 5)));
    }
    rec.success = !reverted;
    if (reverted) rec.revert_reason = "synthetic revert";
    out.push_back(std::move(rec));
    ++cursor.next_tx_index;
  }
}

generated_population generate_receipts(std::uint64_t seed,
                                       const generator_options& options) {
  generated_population pop;
  pop.seed = seed;
  pop.world = make_world(seed);

  generation_cursor cur = start_generation(seed, options);
  pop.receipts.reserve(static_cast<std::size_t>(
      options.transactions < 0 ? 0 : options.transactions));
  generate_receipts_into(*pop.world, options, cur,
                         static_cast<std::uint64_t>(
                             options.transactions < 0 ? 0
                                                      : options.transactions),
                         pop.receipts);
  return pop;
}

}  // namespace leishen::verify
