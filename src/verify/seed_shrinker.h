// Delta-debugging shrinker for failing receipt populations.
//
// The fuzz loop hands over a (seed, population) pair plus a predicate —
// "this population still diverges / still violates an invariant". The
// shrinker ddmin-bisects the receipt vector down to a locally minimal
// failing transaction set (removing any single remaining transaction makes
// the failure disappear), then renders the survivors as a ready-to-paste
// C++ fixture so the bug lands in the repo as a deterministic regression
// test instead of a seed number in a commit message.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/receipt_gen.h"

namespace leishen::verify {

/// True while the candidate receipt set still reproduces the failure.
/// Must be deterministic: the shrinker trusts every answer.
using failure_predicate =
    std::function<bool(const std::vector<chain::tx_receipt>&)>;

struct shrink_options {
  /// Upper bound on ddmin refinement rounds (each round is one pass over
  /// the current partition); populations are small, so this never binds in
  /// practice — it is a guard against a non-deterministic predicate.
  int max_rounds = 256;
};

struct shrink_stats {
  int predicate_calls = 0;
  std::size_t initial_size = 0;
  std::size_t final_size = 0;
};

/// Minimize `failing` under `still_fails` (which must hold for `failing`
/// itself — otherwise the input is returned unchanged). Returns a
/// 1-minimal failing subset, preserving the original receipt order.
[[nodiscard]] std::vector<chain::tx_receipt> shrink(
    std::vector<chain::tx_receipt> failing,
    const failure_predicate& still_fails, const shrink_options& options = {},
    shrink_stats* stats = nullptr);

/// Render receipts as compilable C++ that reconstructs them verbatim. The
/// emitted comment records `world_seed` — rebuild the tagging substrate
/// with `verify::make_world(world_seed)` next to the pasted fixture.
[[nodiscard]] std::string to_fixture_code(
    const std::vector<chain::tx_receipt>& receipts, std::uint64_t world_seed);

struct shrink_result {
  std::vector<chain::tx_receipt> minimal;
  std::string fixture_code;
  shrink_stats stats;
};

/// Convenience for the fuzz loop: shrink a generated population and emit
/// its fixture in one call.
[[nodiscard]] shrink_result shrink_population(
    const generated_population& pop, const failure_predicate& still_fails,
    const shrink_options& options = {});

}  // namespace leishen::verify
