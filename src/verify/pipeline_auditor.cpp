#include "verify/pipeline_auditor.h"

#include <array>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/simplify.h"

namespace leishen::verify {
namespace {

using core::app_transfer;
using core::app_transfer_list;
using core::attack_pattern;
using core::detection_report;
using core::kBlackHoleTag;
using core::pattern_match;
using core::trade;
using core::trade_kind;

// ---- fixed-width accumulator ------------------------------------------------
// Net-flow sums can exceed u256 (many 2^240-scale legs), and the tolerance
// comparison multiplies them by up to 64-bit factors, so all conservation
// arithmetic runs in 512 bits.

struct acc512 {
  std::array<std::uint64_t, 8> limb{};

  void add(const u256& v) {
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      carry += limb[i];
      if (i < 4) carry += v.limb(i);
      limb[i] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
  }

  void add(const acc512& o) {
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      carry += limb[i];
      carry += o.limb[i];
      limb[i] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
  }

  /// *this - o; requires *this >= o.
  [[nodiscard]] acc512 minus(const acc512& o) const {
    acc512 out;
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const unsigned __int128 lhs = limb[i];
      const unsigned __int128 rhs =
          static_cast<unsigned __int128>(o.limb[i]) + borrow;
      if (lhs >= rhs) {
        out.limb[i] = static_cast<std::uint64_t>(lhs - rhs);
        borrow = 0;
      } else {
        out.limb[i] = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
        borrow = 1;
      }
    }
    return out;
  }

  [[nodiscard]] acc512 times(std::uint64_t m) const {
    acc512 out;
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      carry += static_cast<unsigned __int128>(limb[i]) * m;
      out.limb[i] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    return out;  // inputs are bounded far below 2^448, so no overflow here
  }

  friend std::strong_ordering operator<=>(const acc512& a, const acc512& b) {
    for (std::size_t i = 8; i-- > 0;) {
      if (a.limb[i] != b.limb[i]) return a.limb[i] <=> b.limb[i];
    }
    return std::strong_ordering::equal;
  }
  friend bool operator==(const acc512& a, const acc512& b) = default;
};

std::string asset_name(const chain::asset& a) {
  return a.is_ether() ? "ETH" : a.contract_address().to_short();
}

// ---- I1: simplification ----------------------------------------------------

struct flow {
  acc512 in;
  acc512 out;
};

// Keyed by interned tag; map order is raw-id order, which is process-stable
// (violations are compared and reported within one process only).
using flow_map = std::map<std::pair<tag_id, chain::asset>, flow>;

flow_map flows_of(const app_transfer_list& transfers) {
  flow_map m;
  for (const app_transfer& t : transfers) {
    m[{t.to_tag, t.token}].in.add(t.amount);
    m[{t.from_tag, t.token}].out.add(t.amount);
  }
  return m;
}

struct bh_counts {
  std::size_t minted_legs = 0;  // from BlackHole
  std::size_t burned_legs = 0;  // to BlackHole
};

std::map<chain::asset, bh_counts> blackhole_legs(
    const app_transfer_list& transfers) {
  std::map<chain::asset, bh_counts> m;
  for (const app_transfer& t : transfers) {
    if (t.from_tag == kBlackHoleTag) ++m[t.token].minted_legs;
    if (t.to_tag == kBlackHoleTag) ++m[t.token].burned_legs;
  }
  return m;
}

void check_simplification(const detection_report& report,
                          const chain::asset& weth_token,
                          const audit_params& params,
                          std::vector<violation>& out) {
  auto fail = [&](const char* inv, std::string detail) {
    out.push_back(violation{report.tx_index, inv, std::move(detail)});
  };

  // Structural checks on the final list.
  for (const app_transfer& t : report.app_transfers) {
    if (t.from_tag == t.to_tag) {
      fail("simplify/intra-app",
           "leg " + t.from_tag.str() + " -> " + t.to_tag.str());
    }
    if (t.from_tag == params.simplify.weth_tag ||
        t.to_tag == params.simplify.weth_tag) {
      fail("simplify/weth-endpoint",
           "leg " + t.from_tag.str() + " -> " + t.to_tag.str());
    }
    if (!weth_token.is_ether() && t.token == weth_token) {
      fail("simplify/weth-asset", "WETH token survived unification");
    }
    if (t.amount.is_zero()) {
      fail("simplify/zero-amount",
           "leg " + t.from_tag.str() + " -> " + t.to_tag.str());
    }
  }

  // The reference point rule 3 started from: rules 1 + 2 recomputed (both
  // are simple deterministic filters).
  const app_transfer_list unified =
      core::unify_weth(report.tagged_transfers, weth_token);
  app_transfer_list baseline;
  baseline.reserve(unified.size());
  for (const app_transfer& t : unified) {
    if (t.from_tag == t.to_tag) continue;
    if (t.from_tag == params.simplify.weth_tag ||
        t.to_tag == params.simplify.weth_tag) {
      continue;
    }
    baseline.push_back(t);
  }

  // Mint/burn evidence must survive the merge rule exactly: a pass-through
  // intermediary is never the BlackHole, so the number of legs touching it
  // cannot change per asset.
  const auto bh_before = blackhole_legs(baseline);
  const auto bh_after = blackhole_legs(report.app_transfers);
  for (const auto& [tok, before] : bh_before) {
    const auto it = bh_after.find(tok);
    const bh_counts after = it == bh_after.end() ? bh_counts{} : it->second;
    if (before.minted_legs != after.minted_legs ||
        before.burned_legs != after.burned_legs) {
      std::ostringstream os;
      os << asset_name(tok) << ": mint legs " << before.minted_legs << " -> "
         << after.minted_legs << ", burn legs " << before.burned_legs << " -> "
         << after.burned_legs;
      fail("simplify/blackhole-legs", os.str());
    }
  }
  for (const auto& [tok, after] : bh_after) {
    if (!bh_before.contains(tok) &&
        (after.minted_legs != 0 || after.burned_legs != 0)) {
      fail("simplify/blackhole-legs",
           asset_name(tok) + ": BlackHole legs appeared from nowhere");
    }
  }

  // Value conservation: rule 3 may shift each (tag, asset) net flow by at
  // most the merge tolerance per hop. |net_before - net_after| compared as
  //   |(in_b + out_a) - (in_a + out_b)| * tol_den
  //     <= (in_b + out_b) * tol_num * slack_factor
  const flow_map before = flows_of(baseline);
  const flow_map after = flows_of(report.app_transfers);
  std::set<std::pair<tag_id, chain::asset>> keys;
  for (const auto& [k, v] : before) keys.insert(k);
  for (const auto& [k, v] : after) keys.insert(k);
  for (const auto& key : keys) {
    static const flow kEmpty{};
    const auto bit = before.find(key);
    const auto ait = after.find(key);
    const flow& fb = bit == before.end() ? kEmpty : bit->second;
    const flow& fa = ait == after.end() ? kEmpty : ait->second;
    acc512 lhs = fb.in;
    lhs.add(fa.out);
    acc512 rhs = fa.in;
    rhs.add(fb.out);
    const acc512 diff = lhs < rhs ? rhs.minus(lhs) : lhs.minus(rhs);
    acc512 gross = fb.in;
    gross.add(fb.out);
    const acc512 scaled_diff =
        diff.times(params.simplify.merge_tolerance_den);
    const acc512 allowance = gross.times(params.simplify.merge_tolerance_num)
                                 .times(params.merge_slack_factor);
    if (allowance < scaled_diff) {
      fail("simplify/net-flow",
           "tag " + key.first.str() + " asset " + asset_name(key.second) +
               " drifted beyond merge tolerance");
    }
  }
}

// ---- I2: trade lifting ------------------------------------------------------

/// The source-transfer window a trade claims, per its Table III form.
/// `ordered` is false for the two-transfer mint/remove forms, which match
/// in either order.
struct expected_window {
  std::vector<app_transfer> legs;
  bool ordered = true;
};

expected_window window_of(const trade& t) {
  expected_window w;
  const auto leg = [](tag_id from, tag_id to, const u256& amount,
                      const chain::asset& token) {
    return app_transfer{
        .from_tag = from, .to_tag = to, .amount = amount, .token = token};
  };
  switch (t.kind) {
    case trade_kind::swap:
      w.legs.push_back(leg(t.buyer, t.seller, t.amount_sell, t.token_sell));
      w.legs.push_back(leg(t.seller, t.buyer, t.amount_buy, t.token_buy));
      if (!t.amount_buy2.is_zero()) {
        w.legs.push_back(
            leg(t.seller, t.buyer, t.amount_buy2, t.token_buy2));
      }
      break;
    case trade_kind::mint_liquidity:
      if (!t.amount_sell2.is_zero()) {  // three-transfer form, fixed order
        w.legs.push_back(leg(t.buyer, t.seller, t.amount_sell, t.token_sell));
        w.legs.push_back(
            leg(t.buyer, t.seller, t.amount_sell2, t.token_sell2));
        w.legs.push_back(
            leg(kBlackHoleTag, t.buyer, t.amount_buy, t.token_buy));
      } else {
        w.legs.push_back(leg(t.buyer, t.seller, t.amount_sell, t.token_sell));
        w.legs.push_back(
            leg(kBlackHoleTag, t.buyer, t.amount_buy, t.token_buy));
        w.ordered = false;
      }
      break;
    case trade_kind::remove_liquidity:
      if (!t.amount_buy2.is_zero()) {  // three-transfer form, fixed order
        w.legs.push_back(
            leg(t.buyer, kBlackHoleTag, t.amount_sell, t.token_sell));
        w.legs.push_back(leg(t.seller, t.buyer, t.amount_buy, t.token_buy));
        w.legs.push_back(
            leg(t.seller, t.buyer, t.amount_buy2, t.token_buy2));
      } else {
        w.legs.push_back(
            leg(t.buyer, kBlackHoleTag, t.amount_sell, t.token_sell));
        w.legs.push_back(leg(t.seller, t.buyer, t.amount_buy, t.token_buy));
        w.ordered = false;
      }
      break;
  }
  return w;
}

bool window_matches(const app_transfer_list& transfers, std::size_t pos,
                    const expected_window& w) {
  if (pos + w.legs.size() > transfers.size()) return false;
  const auto eq_at = [&](std::size_t i, std::size_t j) {
    return transfers[pos + i] == w.legs[j];
  };
  if (w.ordered) {
    for (std::size_t i = 0; i < w.legs.size(); ++i) {
      if (!eq_at(i, i)) return false;
    }
    return true;
  }
  // Two-transfer mint/remove: either order.
  return (eq_at(0, 0) && eq_at(1, 1)) || (eq_at(0, 1) && eq_at(1, 0));
}

void check_trades(const detection_report& report,
                  std::vector<violation>& out) {
  auto fail = [&](const char* inv, std::string detail) {
    out.push_back(violation{report.tx_index, inv, std::move(detail)});
  };

  std::size_t cursor = 0;
  for (std::size_t ti = 0; ti < report.trades.size(); ++ti) {
    const trade& t = report.trades[ti];
    std::ostringstream id;
    id << "trade #" << ti << " (" << core::to_string(t.kind) << " "
       << t.buyer << " -> " << t.seller << ")";

    if (t.token_sell == t.token_buy) {
      fail("trades/token-identity", id.str() + " buys and sells one token");
    }
    if (t.amount_sell.is_zero() || t.amount_buy.is_zero()) {
      fail("trades/zero-amount", id.str() + " has a zero primary leg");
    }
    if (t.buyer == kBlackHoleTag || t.seller == kBlackHoleTag) {
      fail("trades/blackhole-party", id.str());
    }

    // Map the trade back to its source transfers: the next unconsumed
    // contiguous window matching the claimed form. Disjoint, in-order
    // windows mean no transfer backs two trades.
    const expected_window w = window_of(t);
    bool mapped = false;
    for (std::size_t pos = cursor;
         pos + w.legs.size() <= report.app_transfers.size(); ++pos) {
      if (window_matches(report.app_transfers, pos, w)) {
        cursor = pos + w.legs.size();
        mapped = true;
        break;
      }
    }
    if (!mapped) {
      fail("trades/unmapped",
           id.str() + " has no matching source-transfer window");
    }
  }
}

// ---- I3: pattern reports ----------------------------------------------------

/// The token the borrower received (buy side) in trade `t`, and the one it
/// paid — from the borrower's perspective, mirroring patterns.cpp.
struct perspective {
  chain::asset received;
  chain::asset paid;
};

std::optional<perspective> borrower_side(const trade& t, tag_id borrower) {
  if (t.buyer == borrower) return perspective{t.token_buy, t.token_sell};
  if (t.seller == borrower) return perspective{t.token_sell, t.token_buy};
  return std::nullopt;
}

void check_patterns(const detection_report& report,
                    const core::pattern_params& params,
                    std::vector<violation>& out) {
  auto fail = [&](const char* inv, std::string detail) {
    out.push_back(violation{report.tx_index, inv, std::move(detail)});
  };

  std::set<std::tuple<attack_pattern, chain::asset, tag_id>> keys;
  for (const pattern_match& m : report.matches) {
    const std::string id = std::string{core::to_string(m.pattern)} + " vs " +
                           m.counterparty.str();

    if (!keys.insert({m.pattern, m.target, m.counterparty}).second) {
      fail("patterns/dedup", "duplicate key " + id);
    }

    if (m.trade_indices.empty()) {
      fail("patterns/indices", id + " references no trades");
      continue;
    }
    bool in_range = true;
    for (std::size_t i = 0; i < m.trade_indices.size(); ++i) {
      if (m.trade_indices[i] >= report.trades.size()) {
        fail("patterns/indices", id + " index out of range");
        in_range = false;
      }
      if (i > 0 && m.trade_indices[i] <= m.trade_indices[i - 1]) {
        fail("patterns/indices", id + " indices not strictly increasing");
      }
    }
    if (!in_range) continue;

    switch (m.pattern) {
      case attack_pattern::krp:
        if (static_cast<int>(m.trade_indices.size()) <
            params.krp_min_buys + 1) {
          fail("patterns/count", id + " below krp_min_buys + sell");
        }
        break;
      case attack_pattern::sbs:
        if (m.trade_indices.size() != 3) {
          fail("patterns/count", id + " SBS must reference exactly 3 trades");
        }
        break;
      case attack_pattern::mbs:
        if (m.trade_indices.size() % 2 != 0 ||
            static_cast<int>(m.trade_indices.size()) <
                2 * params.mbs_min_rounds) {
          fail("patterns/count", id + " below mbs_min_rounds round pairs");
        }
        break;
    }

    for (std::size_t i = 0; i < m.trade_indices.size(); ++i) {
      const trade& t = report.trades[m.trade_indices[i]];
      // Rates over this trade must be well-defined (never 0/0).
      if (t.amount_sell.is_zero() && t.amount_buy.is_zero()) {
        fail("patterns/rate", id + " references a zero/zero-amount trade");
      }
      // Every referenced trade involves the borrower — except the SBS pump
      // trade in the middle, which may be any party's (and even when it is
      // the borrower's, it moves the target in either direction).
      if (m.pattern == attack_pattern::sbs && i == 1) continue;
      const auto side = borrower_side(t, report.borrower_tag);
      if (!side.has_value()) {
        fail("patterns/borrower",
             id + " references a trade without the borrower");
        continue;
      }
      // Target consistency from the borrower's perspective: buys receive
      // the target, the closing sell pays it.
      const bool is_final_sell = i + 1 == m.trade_indices.size();
      if (m.pattern == attack_pattern::krp ||
          m.pattern == attack_pattern::sbs) {
        const chain::asset expect =
            is_final_sell ? side->paid : side->received;
        if (expect != m.target) {
          fail("patterns/target", id + " trade does not move the target");
        }
      } else {  // MBS: alternating buy/sell rounds
        const chain::asset expect =
            i % 2 == 0 ? side->received : side->paid;
        if (expect != m.target) {
          fail("patterns/target", id + " round leg does not move the target");
        }
      }
    }
  }
}

}  // namespace

pipeline_auditor::pipeline_auditor(const chain::creation_registry& creations,
                                   const etherscan::label_db& labels,
                                   chain::asset weth_token,
                                   audit_params params)
    : detector_{creations, labels, weth_token, params.patterns},
      weth_token_{weth_token},
      params_{std::move(params)} {}

std::vector<violation> pipeline_auditor::audit(
    const chain::tx_receipt& receipt) const {
  return audit_report(detector_.analyze(receipt));
}

std::vector<violation> pipeline_auditor::audit_report(
    const core::detection_report& report) const {
  std::vector<violation> out;
  if (!report.is_flash_loan) return out;  // later stages did not run
  if (report.borrower_tag.empty()) {
    out.push_back(
        violation{report.tx_index, "flash/borrower-tag", "empty tag"});
  }
  check_simplification(report, weth_token_, params_, out);
  check_trades(report, out);
  check_patterns(report, params_.patterns, out);
  return out;
}

std::vector<violation> pipeline_auditor::audit_all(
    const std::vector<chain::tx_receipt>& receipts) const {
  std::vector<violation> out;
  for (const chain::tx_receipt& rec : receipts) {
    auto v = audit(rec);
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

}  // namespace leishen::verify
