#include "verify/seed_shrinker.h"

#include <algorithm>
#include <sstream>
#include <variant>

namespace leishen::verify {
namespace {

using chain::tx_receipt;

std::vector<tx_receipt> without_chunk(const std::vector<tx_receipt>& all,
                                      std::size_t chunk, std::size_t chunks) {
  std::vector<tx_receipt> out;
  out.reserve(all.size());
  const std::size_t base = all.size() / chunks;
  const std::size_t extra = all.size() % chunks;
  std::size_t pos = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    if (c != chunk) {
      out.insert(out.end(), all.begin() + static_cast<std::ptrdiff_t>(pos),
                 all.begin() + static_cast<std::ptrdiff_t>(pos + len));
    }
    pos += len;
  }
  return out;
}

std::vector<tx_receipt> only_chunk(const std::vector<tx_receipt>& all,
                                   std::size_t chunk, std::size_t chunks) {
  std::vector<tx_receipt> out;
  const std::size_t base = all.size() / chunks;
  const std::size_t extra = all.size() % chunks;
  std::size_t pos = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    if (c == chunk) {
      out.assign(all.begin() + static_cast<std::ptrdiff_t>(pos),
                 all.begin() + static_cast<std::ptrdiff_t>(pos + len));
      break;
    }
    pos += len;
  }
  return out;
}

// ---- fixture rendering ------------------------------------------------------

std::string addr_expr(const address& a) {
  if (a.is_zero()) return "address::zero()";
  return "address::from_hex(\"" + a.to_hex() + "\")";
}

std::string u256_expr(const u256& v) {
  if (v.fits_u64()) {
    return "u256{" + v.to_decimal() + "ULL}";
  }
  return "u256::from_hex(\"" + v.to_hex() + "\")";
}

void render_event(std::ostringstream& os, const chain::trace_event& ev) {
  if (const auto* call = std::get_if<chain::call_record>(&ev)) {
    os << "  r.events.push_back(chain::call_record{\n"
       << "      .caller = " << addr_expr(call->caller) << ",\n"
       << "      .callee = " << addr_expr(call->callee) << ",\n"
       << "      .method = \"" << call->method << "\"";
    if (call->depth != 0) os << ",\n      .depth = " << call->depth;
    os << "});\n";
  } else if (const auto* itx = std::get_if<chain::internal_tx>(&ev)) {
    os << "  r.events.push_back(chain::internal_tx{\n"
       << "      .from = " << addr_expr(itx->from) << ",\n"
       << "      .to = " << addr_expr(itx->to) << ",\n"
       << "      .amount = " << u256_expr(itx->amount) << "});\n";
  } else if (const auto* log = std::get_if<chain::event_log>(&ev)) {
    os << "  r.events.push_back(chain::event_log{\n"
       << "      .emitter = " << addr_expr(log->emitter) << ",\n"
       << "      .name = \"" << log->name << "\"";
    if (!log->addr0.is_zero()) {
      os << ",\n      .addr0 = " << addr_expr(log->addr0);
    }
    if (!log->addr1.is_zero()) {
      os << ",\n      .addr1 = " << addr_expr(log->addr1);
    }
    if (!log->addr2.is_zero()) {
      os << ",\n      .addr2 = " << addr_expr(log->addr2);
    }
    if (!log->amount0.is_zero()) {
      os << ",\n      .amount0 = " << u256_expr(log->amount0);
    }
    if (!log->amount1.is_zero()) {
      os << ",\n      .amount1 = " << u256_expr(log->amount1);
    }
    if (!log->amount2.is_zero()) {
      os << ",\n      .amount2 = " << u256_expr(log->amount2);
    }
    if (!log->amount3.is_zero()) {
      os << ",\n      .amount3 = " << u256_expr(log->amount3);
    }
    os << "});\n";
  }
}

}  // namespace

std::vector<tx_receipt> shrink(std::vector<tx_receipt> failing,
                               const failure_predicate& still_fails,
                               const shrink_options& options,
                               shrink_stats* stats) {
  shrink_stats local;
  local.initial_size = failing.size();
  auto fails = [&](const std::vector<tx_receipt>& candidate) {
    ++local.predicate_calls;
    return still_fails(candidate);
  };

  if (!fails(failing)) {
    // Nothing to shrink from — hand the input back untouched.
    local.final_size = failing.size();
    if (stats != nullptr) *stats = local;
    return failing;
  }

  // Zeller's ddmin: alternate reduce-to-subset and reduce-to-complement,
  // refining the partition granularity until single receipts.
  std::size_t chunks = 2;
  for (int round = 0; round < options.max_rounds && failing.size() >= 2;
       ++round) {
    bool reduced = false;
    for (std::size_t c = 0; c < chunks && !reduced; ++c) {
      auto subset = only_chunk(failing, c, chunks);
      if (!subset.empty() && subset.size() < failing.size() &&
          fails(subset)) {
        failing = std::move(subset);
        chunks = 2;
        reduced = true;
      }
    }
    for (std::size_t c = 0; c < chunks && !reduced; ++c) {
      auto rest = without_chunk(failing, c, chunks);
      if (!rest.empty() && rest.size() < failing.size() && fails(rest)) {
        failing = std::move(rest);
        chunks = std::max<std::size_t>(chunks - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;
    if (chunks >= failing.size()) break;  // 1-minimal
    chunks = std::min(chunks * 2, failing.size());
  }

  local.final_size = failing.size();
  if (stats != nullptr) *stats = local;
  return failing;
}

std::string to_fixture_code(const std::vector<tx_receipt>& receipts,
                            std::uint64_t world_seed) {
  std::ostringstream os;
  os << "// Shrunken regression fixture: " << receipts.size()
     << " transaction(s) over the synthetic world of seed " << world_seed
     << ".\n"
     << "// Rebuild the tagging substrate with verify::make_world("
     << world_seed << "ULL).\n"
     << "std::vector<chain::tx_receipt> receipts;\n";
  for (const tx_receipt& rec : receipts) {
    os << "{\n"
       << "  chain::tx_receipt r;\n"
       << "  r.tx_index = " << rec.tx_index << ";\n"
       << "  r.from = " << addr_expr(rec.from) << ";\n"
       << "  r.to = " << addr_expr(rec.to) << ";\n";
    if (!rec.description.empty()) {
      os << "  r.description = \"" << rec.description << "\";\n";
    }
    os << "  r.block_number = " << rec.block_number << ";\n"
       << "  r.timestamp = " << rec.timestamp << ";\n"
       << "  r.success = " << (rec.success ? "true" : "false") << ";\n";
    if (!rec.revert_reason.empty()) {
      os << "  r.revert_reason = \"" << rec.revert_reason << "\";\n";
    }
    for (const chain::trace_event& ev : rec.events) render_event(os, ev);
    os << "  receipts.push_back(std::move(r));\n"
       << "}\n";
  }
  return os.str();
}

shrink_result shrink_population(const generated_population& pop,
                                const failure_predicate& still_fails,
                                const shrink_options& options) {
  shrink_result out;
  out.minimal = shrink(pop.receipts, still_fails, options, &out.stats);
  out.fixture_code = to_fixture_code(out.minimal, pop.seed);
  return out;
}

}  // namespace leishen::verify
