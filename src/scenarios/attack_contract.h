// A scriptable attack/strategy contract (the paper's attack model, Fig. 2).
//
// Real attackers deploy a bespoke contract whose body runs inside the flash
// loan callback; here the body is a C++ closure, so each scenario scripts
// its trade sequence directly while the chain records the same call tree,
// internal transactions and event logs a mainnet attack would leave.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "chain/blockchain.h"
#include "defi/interfaces.h"
#include "token/erc20.h"

namespace leishen::scenarios {

class attack_contract : public chain::contract,
                        public defi::uniswap_v2_callee,
                        public defi::aave_callee,
                        public defi::dydx_callee {
 public:
  using body_fn = std::function<void(chain::context&)>;

  attack_contract(chain::blockchain& bc, address self,
                  std::string app_name)
      : contract{self, std::move(app_name), "AttackContract"} {
    (void)bc;
  }

  /// The logic run inside the flash loan callback.
  void set_callback(body_fn cb) { callback_ = std::move(cb); }

  /// Entry point invoked by the attacker EOA's transaction.
  void run(chain::context& ctx, const body_fn& body) {
    chain::context::call_guard guard{ctx, addr(), "run"};
    body(ctx);
  }

  /// Owner sweep: move tokens held by the contract out (how real attack
  /// contracts hand profits back to their deployer).
  void sweep(chain::context& ctx, token::erc20& t, const address& to,
             const u256& amount) {
    chain::context::call_guard guard{ctx, addr(), "sweep"};
    t.transfer(ctx, to, amount);
  }

  /// Mimic `selfdestruct` cleanup some attackers perform (paper §VI-D2).
  void self_destruct(chain::context& ctx) {
    chain::context::call_guard guard{ctx, addr(), "selfdestruct"};
    ctx.state().set_destroyed(addr(), true);
  }

  [[nodiscard]] address callee_addr() const override { return addr(); }

  void on_uniswap_v2_call(chain::context& ctx, const address&,
                          const u256&, const u256&) override {
    if (callback_) callback_(ctx);
  }
  void on_execute_operation(chain::context& ctx, const chain::asset&,
                            const u256&, const u256&) override {
    if (callback_) callback_(ctx);
  }
  void on_call_function(chain::context& ctx, const chain::asset&,
                        const u256&, const u256&) override {
    if (callback_) callback_(ctx);
  }

 private:
  body_fn callback_;
};

}  // namespace leishen::scenarios
