// A simulated DeFi universe (the substrate substitution for mainnet).
//
// Deploys the protocols the 22 real-world attacks and the synthetic wild
// population need: Uniswap V2 (factory/router/pairs, flash swaps), Balancer,
// Curve-style StableSwap pools, Harvest/Yearn/Belt/xWin-style vaults,
// Compound/bZx-style lending, AAVE and dYdX flash loan providers, a
// Kyber-style aggregator, WETH, and a roster of tokens — each under its
// ground-truth application name, with realistic partial Etherscan label
// coverage and a USD price table for profit accounting.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "chain/blockchain.h"
#include "defi/aave.h"
#include "defi/aggregator.h"
#include "defi/balancer.h"
#include "defi/dydx.h"
#include "defi/lending.h"
#include "defi/price_oracle.h"
#include "defi/stableswap.h"
#include "defi/uniswap_v2.h"
#include "defi/vault.h"
#include "etherscan/label_db.h"
#include "token/weth.h"

namespace leishen::scenarios {

using chain::blockchain;
using chain::context;
using token::erc20;

class universe {
 public:
  /// Deploys and seeds everything. `start_block` defaults to early 2020,
  /// the beginning of the paper's timeline.
  explicit universe(std::uint64_t start_block = 9'200'000);

  universe(const universe&) = delete;
  universe& operator=(const universe&) = delete;

  blockchain& bc() { return bc_; }
  const blockchain& bc() const { return bc_; }

  // -- tokens -------------------------------------------------------------------
  token::weth& weth() { return *weth_; }
  /// Get or create a token. `usd_price` is the reference price used for
  /// profit accounting (paper: average price on the attack day).
  erc20& make_token(const std::string& symbol, const std::string& app,
                    double usd_price, unsigned decimals = 18);
  erc20& tok(const std::string& symbol) const;

  /// USD value of an amount (for Table VI/VII accounting).
  [[nodiscard]] double usd_value(const chain::asset& a,
                                 const u256& amount) const;
  void set_usd_price(const chain::asset& a, double price_per_whole);

  // -- protocols -----------------------------------------------------------------
  defi::uniswap_v2_factory& uniswap_factory() { return *uni_factory_; }
  defi::uniswap_v2_router& uniswap_router() { return *uni_router_; }
  defi::aave_pool& aave() { return *aave_; }
  defi::dydx_solo_margin& dydx() { return *dydx_; }
  defi::aggregator& kyber() { return *kyber_; }
  defi::price_oracle& oracle() { return *oracle_; }
  defi::lending_pool& compound() { return *compound_; }
  defi::lending_pool& bzx() { return *bzx_; }

  /// Create a Uniswap pair and seed it with liquidity from the universe's
  /// liquidity provider whale.
  defi::uniswap_v2_pair& make_uniswap_pool(erc20& a, const u256& amount_a,
                                           erc20& b, const u256& amount_b,
                                           bool emit_trade_events = true);

  /// Create a standalone AMM pool owned by another application (Spartan,
  /// JulSwap, AutoShark, ... — the BSC protocols). Optionally silent to
  /// explorers.
  defi::uniswap_v2_pair& make_app_pool(const std::string& app, erc20& a,
                                       const u256& amount_a, erc20& b,
                                       const u256& amount_b,
                                       bool emit_trade_events);

  /// Create and seed a StableSwap pool under `app`.
  defi::stableswap_pool& make_stable_pool(const std::string& app, erc20& c0,
                                          const u256& amount0, erc20& c1,
                                          const u256& amount1,
                                          std::uint64_t amplification = 100);

  /// Create a vault under `app` over `underlying`, investing into `pool`;
  /// seeds it with `seed_deposit` from the whale and invests `invested`.
  defi::vault& make_vault(const std::string& app, const std::string& symbol,
                          erc20& underlying, erc20& invested_token,
                          defi::stableswap_pool& pool,
                          const u256& seed_deposit, const u256& invested,
                          bool emit_events);

  /// Fund the AAVE and dYdX pools with `amount` of `tok` (from the whale).
  void fund_flashloan_providers(erc20& t, const u256& amount);

  /// The deep-pocketed liquidity provider used for seeding.
  [[nodiscard]] const address& whale() const { return whale_; }

  /// Mint tokens to an account (scenario setup shortcut, outside any
  /// detector-relevant transaction).
  void airdrop(erc20& t, const address& to, const u256& amount);

  /// Rebuild the Etherscan label database from current deployments.
  /// `exclude_apps` keeps those apps unlabeled (e.g. unknown BSC protocols).
  void reseed_labels(const std::vector<std::string>& exclude_apps = {});
  etherscan::label_db& labels() { return labels_; }
  const etherscan::label_db& labels() const { return labels_; }

 private:
  blockchain bc_;
  etherscan::label_db labels_;
  address whale_;
  token::weth* weth_ = nullptr;
  defi::uniswap_v2_factory* uni_factory_ = nullptr;
  defi::uniswap_v2_router* uni_router_ = nullptr;
  defi::aave_pool* aave_ = nullptr;
  defi::dydx_solo_margin* dydx_ = nullptr;
  defi::aggregator* kyber_ = nullptr;
  defi::price_oracle* oracle_ = nullptr;
  defi::lending_pool* compound_ = nullptr;
  defi::lending_pool* bzx_ = nullptr;
  std::unordered_map<std::string, erc20*> tokens_;
  std::unordered_map<chain::asset, double, chain::asset_hash> usd_prices_;
};

}  // namespace leishen::scenarios
