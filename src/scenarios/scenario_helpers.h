// Shared machinery for attack reconstructions and workload generation.
#pragma once

#include <functional>
#include <string>

#include "scenarios/attack_contract.h"
#include "scenarios/universe.h"

namespace leishen::scenarios {

/// Deploy a fresh attacker: an unlabeled EOA plus its attack contract
/// (they share one creation tree, so LeiShen unifies them under the root
/// pseudo-tag — the paper's flash loan borrower identity).
struct attacker_identity {
  address eoa;
  attack_contract* contract;
};
attacker_identity make_attacker(universe& u);

/// Swap directly against a pair (attack-contract style, no router):
/// transfer the input in, call swap. Must run inside a contract frame that
/// holds the input tokens. Returns amount_out.
u256 swap_direct(chain::context& ctx, defi::uniswap_v2_pair& pair,
                 erc20& token_in, const u256& amount_in, const address& to);

/// Run `body` inside a dYdX flash loan of `amount` of `tok` taken by the
/// attacker's contract. The body must leave the contract holding at least
/// amount + 2 wei of `tok`; repayment approval is handled here.
const chain::tx_receipt& run_flash_dydx(universe& u,
                                        const attacker_identity& who,
                                        erc20& tok, const u256& amount,
                                        const std::string& description,
                                        attack_contract::body_fn body);

/// Same via an AAVE flash loan (fee 9 bps; body must leave amount + fee).
const chain::tx_receipt& run_flash_aave(universe& u,
                                        const attacker_identity& who,
                                        erc20& tok, const u256& amount,
                                        const std::string& description,
                                        attack_contract::body_fn body);

/// Same via a Uniswap flash swap on `pool` (body must leave the 0.3%-fee
/// repayment in the contract; it is pushed back to the pool here).
const chain::tx_receipt& run_flash_uniswap(universe& u,
                                           const attacker_identity& who,
                                           defi::uniswap_v2_pair& pool,
                                           erc20& tok, const u256& amount,
                                           const std::string& description,
                                           attack_contract::body_fn body);

/// A pool whose outgoing payments come from a *satellite* account in an
/// unlabeled creation tree distinct from the pool's own application — the
/// account topology that breaks LeiShen's (and DeFiRanger's) trade
/// identification on the JulSwap and PancakeHunny attacks (paper §VI-B).
class split_pool : public chain::contract {
 public:
  split_pool(chain::blockchain& bc, address self, std::string app_name,
             erc20& base, erc20& quote);

  /// The payout satellite's address (funded at construction time by the
  /// scenario; lives in its own unlabeled tree).
  [[nodiscard]] const address& satellite() const noexcept {
    return satellite_;
  }

  /// Scripted trade: pull `amount_in` of `token_in` from the caller into
  /// the pool account, pay `amount_out` of the other token from the
  /// satellite account.
  void trade(chain::context& ctx, erc20& token_in, const u256& amount_in,
             const u256& amount_out);

  [[nodiscard]] erc20& base() const noexcept { return base_; }
  [[nodiscard]] erc20& quote() const noexcept { return quote_; }

 private:
  erc20& base_;
  erc20& quote_;
  address satellite_;
};

}  // namespace leishen::scenarios
