// Reconstructions of the 22 real-world flpAttacks (paper Table I).
//
// Each reconstruction scripts the published manipulation steps against the
// simulated protocols so that the resulting transaction trace carries the
// same trade structure (pattern, approximate rate shape, event visibility,
// account topology) as the mainnet attack. Ground-truth expectations for
// LeiShen, DeFiRanger and Explorer+LeiShen reproduce Table IV.
#pragma once

#include <string>
#include <vector>

#include "core/patterns.h"
#include "scenarios/attack_contract.h"
#include "scenarios/universe.h"

namespace leishen::scenarios {

struct known_attack {
  int id = 0;                 // Table I row
  std::string name;           // "bZx-1", ...
  std::string victim_app;     // attacked application
  std::string pair_label;     // the Table I token pair, e.g. "ETH-WBTC"
  // Ground truth from the paper's manual analysis; empty = no clear pattern.
  std::vector<core::attack_pattern> true_patterns;
  // Table IV expectations.
  bool leishen_expected = false;
  bool defiranger_expected = false;
  bool explorer_expected = false;
  // The attack transaction.
  std::uint64_t tx_index = 0;
  address attacker;          // EOA
  address contract_addr;     // attack contract
};

/// Run all 22 reconstructions against the universe (in Table I order) and
/// return their metadata. Labels are reseeded afterwards so the BSC-style
/// protocols involved stay unlabeled where the reconstruction requires it.
std::vector<known_attack> run_known_attacks(universe& u);

/// Run a single reconstruction by Table I id (1-22). Useful for examples.
known_attack run_known_attack(universe& u, int id);

}  // namespace leishen::scenarios
