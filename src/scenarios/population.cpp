#include "scenarios/population.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "common/sim_time.h"
#include "core/flashloan_id.h"
#include "defi/lending.h"
#include "defi/mixer.h"
#include "defi/stableswap.h"
#include "defi/vault.h"
#include "scenarios/scenario_helpers.h"

namespace leishen::scenarios {
namespace {

using defi::lending_pool;
using defi::stableswap_pool;
using defi::uniswap_v2_pair;
using defi::vault;

enum class recipe {
  krp,            // twin-pool batch buys
  sbs,            // margin-financed symmetric pair
  sbs_rounds,     // SBS executed in 3 rounds: also trips MBS
  mbs,            // vault rounds
  fp_compound,    // benign vault compounding (MBS false positive)
  fp_compound_sbs,// ditto with a pump-shaped second deposit (SBS+MBS FP)
  gray_krp,       // 3-4 rising buys: sub-threshold for KRP's N >= 5
  gray_sbs,       // symmetric pair with ~25% pump: under the 28% bar
  gray_mbs        // 2 profitable rounds: under the 3-round bar
};

struct attack_spec {
  recipe kind = recipe::sbs;
  std::string victim;
  std::string token;  // target token symbol
  int attacker_idx = 0;   // per-victim attacker index
  int contract_idx = 0;   // per-attacker contract index
  std::int64_t timestamp = 0;
  bool known_or_repeat = false;
  bool truth_mbs_override_off = false;  // sbs_rounds: MBS reading is wrong
  bool from_aggregator = false;
  double target_profit_usd = 1'000.0;
  double borrow_multiplier = 1.5;
  /// Attacker brings own capital and takes only a token flash loan —
  /// produces the astronomic yield rates at the top of Table VII.
  bool self_funded = false;
  /// Gray-zone behavior below the paper thresholds: benign at defaults,
  /// flagged once thresholds are relaxed (the §VII ablation's subject).
  bool gray = false;
};

/// Whole-token amount from a fractional token count (milli-token units).
u256 milli(double tokens) {
  if (tokens < 0.001) tokens = 0.001;
  return units(static_cast<std::uint64_t>(tokens * 1000.0), 15);
}

struct pop_state {
  universe& u;
  rng rnd;
  erc20* weth = nullptr;

  // attacker identities: (victim, attacker_idx) -> EOA; plus contracts.
  std::map<std::pair<std::string, int>, address> eoas;
  std::map<std::tuple<std::string, int, int>, attack_contract*> contracts;
  // victim infrastructure caches
  std::map<std::string, lending_pool*> margins;
  struct vault_setup {
    vault* v;
    stableswap_pool* pool;
  };
  std::map<std::pair<std::string, std::string>, vault_setup> vaults;

  // benign background infrastructure
  std::vector<uniswap_v2_pair*> benign_pools;
  std::vector<erc20*> benign_tokens;

  explicit pop_state(universe& uu, std::uint64_t seed) : u{uu}, rnd{seed} {
    weth = &u.weth();
  }

  attacker_identity identity(const attack_spec& s) {
    const auto ekey = std::make_pair(s.victim, s.attacker_idx);
    auto eit = eoas.find(ekey);
    if (eit == eoas.end()) {
      std::string app;
      if (s.from_aggregator) app = "Beefy";  // a labeled yield aggregator
      const address eoa = u.bc().create_user_account(app);
      if (s.from_aggregator) u.labels().tag(eoa, app);
      eit = eoas.emplace(ekey, eoa).first;
    }
    const auto ckey = std::make_tuple(s.victim, s.attacker_idx,
                                      s.contract_idx);
    auto cit = contracts.find(ckey);
    if (cit == contracts.end()) {
      auto& c = u.bc().deploy<attack_contract>(
          eit->second, s.from_aggregator ? "Beefy" : "");
      if (s.from_aggregator) u.labels().tag(c.addr(), "Beefy");
      cit = contracts.emplace(ckey, &c).first;
    }
    return attacker_identity{eit->second, cit->second};
  }

  /// Victim AMM pool pair sized so the canonical SBS/KRP play nets roughly
  /// `target_usd`. Quote is WETH ($2000); reserve R such that ~1.6R of
  /// profit in quote covers the target. Pools are fresh per attack (the
  /// previous attack leaves them arbitraged flat); the *token* is reused so
  /// Table VI's asset counts hold.
  std::pair<uniswap_v2_pair*, uniswap_v2_pair*> pools_for(
      const std::string& victim, const std::string& token,
      double target_usd, double profit_per_reserve) {
    const double r = std::max(0.02, target_usd / (profit_per_reserve * 2'000.0));
    erc20& x = u.make_token(token, victim, 2'000.0 / 100.0);
    auto& p1 = u.make_app_pool(victim, *weth, milli(r), x, milli(100 * r),
                               /*emit_trade_events=*/false);
    auto& p2 = u.make_app_pool(victim, *weth, milli(10 * r), x,
                               milli(100 * r), false);
    return {&p1, &p2};
  }

  /// Leveraged-farming desks (Alpha Homora-style) whose margin trades do
  /// the pumping. A separate application from the pool's, or the pump
  /// transfers would be intra-app and invisible.
  lending_pool* margin_for(const std::string& victim) {
    const auto it = margins.find(victim);
    if (it != margins.end()) return it->second;
    const std::string app = "Alpha Homora";
    const address dep = u.bc().create_user_account(app);
    auto& m = u.bc().deploy<lending_pool>(dep, app, u.oracle(), 75, false);
    margins.emplace(victim, &m);
    return &m;
  }

  vault_setup vault_for(const std::string& victim, const std::string& token,
                        double target_usd) {
    const auto key = std::make_pair(victim, token);
    const auto it = vaults.find(key);
    if (it != vaults.end()) return it->second;
    // Stable pool per-side P sized so ~3 rounds net the target.
    const double p = std::max(30.0, target_usd / 0.055);
    erc20& un = u.make_token(token, token, 1.0);
    erc20& inv = u.make_token(token + "x", token + "x", 1.0);
    auto& pool = u.make_stable_pool(victim, un, milli(p), inv, milli(p), 25);
    auto& v = u.make_vault(victim, "v" + token, un, inv, pool,
                           milli(2.4 * p), milli(0.4 * p), false);
    const vault_setup setup{&v, &pool};
    vaults.emplace(key, setup);
    return setup;
  }
};

// ---------------------------------------------------------------------------
// attack recipes
// ---------------------------------------------------------------------------

population_tx run_sbs_recipe(pop_state& st, const attack_spec& s,
                             int rounds) {
  // The pump must buy *less* of X than the entry did, or the symmetric exit
  // beats the pump's average rate and condition b fails; with the entry
  // split across rounds the pump shrinks accordingly.
  const std::uint64_t pump_frac =
      rounds > 1 ? 1 : 2 + st.rnd.next_below(4);
  // Empirical per-recipe calibration: profit per unit of pool reserve as a
  // function of the pump fraction (measured on the canonical play).
  const double profit_per_reserve =
      rounds > 1 ? 1.9 : 0.62 * static_cast<double>(pump_frac) + 0.4;
  auto [pool, pool2] =
      st.pools_for(s.victim, s.token, s.target_profit_usd,
                   profit_per_reserve);
  lending_pool* margin = st.margin_for(s.victim);
  (void)pool2;
  const attacker_identity who = st.identity(s);
  erc20& quote = *st.weth;
  erc20& x = st.u.tok(s.token);

  const u256 reserve = pool->reserve_of(st.u.bc().state(), quote);
  const u256 q1 = reserve * u256{2} / u256{static_cast<std::uint64_t>(rounds)};
  const u256 pump = reserve * u256{pump_frac};
  const u256 stake = pump / u256{10};
  st.u.airdrop(quote, margin->addr(), pump * u256{3});

  const u256 need = (q1 + stake) * u256{static_cast<std::uint64_t>(rounds)};
  u256 flash =
      need + u256::muldiv(need,
                          u256{static_cast<std::uint64_t>(
                              s.borrow_multiplier * 100.0)},
                          u256{100});
  if (s.self_funded) {
    st.u.airdrop(quote, who.contract->addr(), need + need / u256{5});
    flash = need / u256{10'000} + u256{1'000};
  }
  st.u.fund_flashloan_providers(quote, flash * u256{2});

  auto body = [&, q1, stake](chain::context& ctx) {
    for (int r = 0; r < rounds; ++r) {
      const u256 x1 = swap_direct(ctx, *pool, quote, q1,
                                  who.contract->addr());
      quote.approve(ctx, margin->addr(), stake);
      margin->margin_trade(ctx, quote, stake, 10, *pool);
      swap_direct(ctx, *pool, x, x1, who.contract->addr());
    }
  };
  const auto& rec = run_flash_dydx(st.u, who, quote, flash,
                                   "pop-sbs:" + s.victim, body);
  if (!rec.success) {
    throw std::runtime_error("population SBS reverted: " +
                             rec.revert_reason);
  }
  population_tx tx;
  tx.tx_index = rec.tx_index;
  tx.timestamp = rec.timestamp;
  tx.truth_attack = true;
  tx.truth_sbs = true;
  tx.truth_mbs = rounds >= 3 && !s.truth_mbs_override_off;
  tx.victim_app = s.victim;
  tx.target_token = s.token;
  tx.attacker = who.eoa;
  tx.contract_addr = who.contract->addr();
  tx.known_or_repeat = s.known_or_repeat;
  tx.borrowed_usd = st.u.usd_value(quote.id(), flash);
  tx.profit_token = "WETH";
  return tx;
}

population_tx run_krp_recipe(pop_state& st, const attack_spec& s) {
  auto [pool1, pool2] =
      st.pools_for(s.victim, s.token, s.target_profit_usd, 1.5);
  const attacker_identity who = st.identity(s);
  erc20& quote = *st.weth;
  erc20& x = st.u.tok(s.token);

  const u256 reserve = pool1->reserve_of(st.u.bc().state(), quote);
  const int buys = s.gray ? 3 + static_cast<int>(st.rnd.next_below(2))
                          : 5 + static_cast<int>(st.rnd.next_below(4));
  const u256 per_buy = reserve / u256{3};
  const u256 need = per_buy * u256{static_cast<std::uint64_t>(buys)};
  u256 flash =
      need + u256::muldiv(need,
                          u256{static_cast<std::uint64_t>(
                              s.borrow_multiplier * 100.0)},
                          u256{100});
  if (s.self_funded) {
    st.u.airdrop(quote, who.contract->addr(), need + need / u256{5});
    flash = need / u256{10'000} + u256{1'000};
  }
  st.u.fund_flashloan_providers(quote, flash * u256{2});

  auto body = [&, per_buy, buys](chain::context& ctx) {
    u256 bought;
    for (int i = 0; i < buys; ++i) {
      bought +=
          swap_direct(ctx, *pool1, quote, per_buy, who.contract->addr());
    }
    swap_direct(ctx, *pool2, x, bought, who.contract->addr());
  };
  const auto& rec = run_flash_dydx(st.u, who, quote, flash,
                                   "pop-krp:" + s.victim, body);
  if (!rec.success) {
    throw std::runtime_error("population KRP reverted: " +
                             rec.revert_reason);
  }
  population_tx tx;
  tx.tx_index = rec.tx_index;
  tx.timestamp = rec.timestamp;
  tx.truth_attack = !s.gray;
  tx.truth_krp = !s.gray;
  tx.gray = s.gray;
  tx.victim_app = s.victim;
  tx.target_token = s.token;
  tx.attacker = who.eoa;
  tx.contract_addr = who.contract->addr();
  tx.known_or_repeat = s.known_or_repeat;
  tx.borrowed_usd = st.u.usd_value(quote.id(), flash);
  tx.profit_token = "WETH";
  return tx;
}

population_tx run_mbs_recipe(pop_state& st, const attack_spec& s) {
  const auto setup = st.vault_for(s.victim, s.token, s.target_profit_usd);
  vault* v = setup.v;
  stableswap_pool* price_pool = setup.pool;
  const attacker_identity who = st.identity(s);
  erc20& un = v->underlying();
  erc20& inv = v->invested_token();

  const u256 pool_side = un.balance_of(st.u.bc().state(),
                                       price_pool->addr());
  const u256 deposit = pool_side + pool_side / u256{5};  // 1.2 P
  const u256 pump = pool_side * u256{3} / u256{5};       // 0.6 P
  const int rounds = s.gray ? 2 : 3 + static_cast<int>(st.rnd.next_below(2));
  const u256 need = deposit + pump;
  const u256 flash = need + need / u256{4};
  st.u.fund_flashloan_providers(un, flash * u256{2});

  auto body = [&, deposit, pump, rounds](chain::context& ctx) {
    for (int r = 0; r < rounds; ++r) {
      un.approve(ctx, v->addr(), deposit);
      const u256 shares = v->deposit(ctx, deposit);
      un.approve(ctx, price_pool->addr(), pump);
      const u256 got =
          price_pool->exchange(ctx, price_pool->index_of(un),
                               price_pool->index_of(inv), pump,
                               who.contract->addr());
      v->withdraw(ctx, shares);
      inv.approve(ctx, price_pool->addr(), got);
      price_pool->exchange(ctx, price_pool->index_of(inv),
                           price_pool->index_of(un), got,
                           who.contract->addr());
    }
  };
  const auto& rec =
      run_flash_aave(st.u, who, un, flash, "pop-mbs:" + s.victim, body);
  if (!rec.success) {
    throw std::runtime_error("population MBS reverted: " +
                             rec.revert_reason);
  }
  population_tx tx;
  tx.tx_index = rec.tx_index;
  tx.timestamp = rec.timestamp;
  tx.truth_attack = !s.gray;
  tx.truth_mbs = !s.gray;
  tx.gray = s.gray;
  tx.victim_app = s.victim;
  tx.target_token = s.token;
  tx.attacker = who.eoa;
  tx.contract_addr = who.contract->addr();
  tx.known_or_repeat = s.known_or_repeat;
  tx.borrowed_usd = st.u.usd_value(un.id(), flash);
  tx.profit_token = un.symbol();
  return tx;
}

/// A symmetric buy/pump/sell whose pump stays near 25%: below the paper's
/// 28% SBS bar, visible only to relaxed thresholds (Value DeFi-shaped).
population_tx run_gray_sbs(pop_state& st, const attack_spec& s) {
  auto [pool, pool2] = st.pools_for(s.victim, s.token, s.target_profit_usd, 0.05);
  (void)pool2;
  lending_pool* margin = st.margin_for(s.victim);
  const attacker_identity who = st.identity(s);
  erc20& quote = *st.weth;
  erc20& x = st.u.tok(s.token);

  const u256 reserve = pool->reserve_of(st.u.bc().state(), quote);
  const u256 q1 = reserve / u256{5};
  const u256 stake = reserve / u256{200};
  st.u.airdrop(quote, margin->addr(), reserve);
  const u256 flash = (q1 + stake) * u256{2};
  st.u.fund_flashloan_providers(quote, flash * u256{2});

  auto body = [&, q1, stake](chain::context& ctx) {
    const u256 x1 = swap_direct(ctx, *pool, quote, q1, who.contract->addr());
    quote.approve(ctx, margin->addr(), stake);
    margin->margin_trade(ctx, quote, stake, 10, *pool);
    swap_direct(ctx, *pool, x, x1, who.contract->addr());
  };
  const auto& rec = run_flash_dydx(st.u, who, quote, flash,
                                   "pop-gray-sbs:" + s.victim, body);
  if (!rec.success) {
    throw std::runtime_error("population gray SBS reverted: " +
                             rec.revert_reason);
  }
  population_tx tx;
  tx.tx_index = rec.tx_index;
  tx.timestamp = rec.timestamp;
  tx.gray = true;
  tx.victim_app = s.victim;
  tx.target_token = s.token;
  tx.attacker = who.eoa;
  tx.contract_addr = who.contract->addr();
  tx.borrowed_usd = st.u.usd_value(quote.id(), flash);
  return tx;
}

/// Benign vault compounding inside a flash loan: rounds of (deposit,
/// harvest-yield, withdraw). Profitable against the vault's reward
/// emissions — the MBS false-positive shape of §VI-C. `with_pump_deposit`
/// adds a second, pricier deposit inside the first round so SBS trips too.
population_tx run_fp_compound(pop_state& st, const attack_spec& s,
                              bool with_pump_deposit) {
  const auto setup = st.vault_for(s.victim, s.token, s.target_profit_usd);
  vault* v = setup.v;
  stableswap_pool* price_pool = setup.pool;
  const attacker_identity who = st.identity(s);
  erc20& un = v->underlying();
  erc20& inv = v->invested_token();

  const u256 vault_assets = v->total_assets(st.u.bc().state());
  const u256 stakeu = vault_assets / u256{4};
  const u256 flash = stakeu * u256{3};
  st.u.fund_flashloan_providers(un, flash * u256{2});

  const std::uint64_t yield_bps = with_pump_deposit ? 3'500 : 120;
  auto body = [&, stakeu, yield_bps](chain::context& ctx) {
    for (int r = 0; r < 3; ++r) {
      un.approve(ctx, v->addr(), stakeu);
      const u256 shares = v->deposit(ctx, stakeu);
      // Harvested reward emissions accrue while staked.
      const u256 reward =
          v->total_assets(ctx.state()) * u256{yield_bps} / u256{10'000};
      un.mint(ctx, v->addr(), reward);
      if (with_pump_deposit && r == 0) {
        // A transient rebalance lifts the pricing pool while the bot tops
        // up its stake, then unwinds: the second deposit happens at a
        // spike price, so the symmetric exit prices strictly between the
        // entry and the spike — a textbook (spurious) SBS.
        un.approve(ctx, price_pool->addr(), stakeu);
        const u256 got = price_pool->exchange(
            ctx, price_pool->index_of(un), price_pool->index_of(inv),
            stakeu, who.contract->addr());
        un.approve(ctx, v->addr(), stakeu);
        const u256 shares2 = v->deposit(ctx, stakeu);
        inv.approve(ctx, price_pool->addr(), got);
        price_pool->exchange(ctx, price_pool->index_of(inv),
                             price_pool->index_of(un), got,
                             who.contract->addr());
        v->withdraw(ctx, shares);
        v->withdraw(ctx, shares2);
      } else {
        v->withdraw(ctx, shares);
      }
    }
  };
  const auto& rec = run_flash_aave(st.u, who, un, flash,
                                   "pop-compound:" + s.victim, body);
  if (!rec.success) {
    throw std::runtime_error("population compounding reverted: " +
                             rec.revert_reason);
  }
  population_tx tx;
  tx.tx_index = rec.tx_index;
  tx.timestamp = rec.timestamp;
  tx.truth_attack = false;  // benign strategy: every pattern hit is an FP
  tx.victim_app = s.victim;
  tx.target_token = s.token;
  tx.attacker = who.eoa;
  tx.contract_addr = who.contract->addr();
  tx.from_aggregator = s.from_aggregator;
  tx.borrowed_usd = st.u.usd_value(un.id(), flash);
  return tx;
}

// ---------------------------------------------------------------------------
// benign background
// ---------------------------------------------------------------------------

void build_benign_infra(pop_state& st) {
  for (int i = 0; i < 6; ++i) {
    erc20& t = st.u.make_token("BG" + std::to_string(i), "Token BG", 10.0);
    st.benign_tokens.push_back(&t);
    // Two venues per token so arbitrage has a shape; both deep.
    st.benign_pools.push_back(&st.u.make_uniswap_pool(
        *st.weth, units(1'000'000, 18), t, units(200'000'000, 18), true));
    st.benign_pools.push_back(&st.u.make_app_pool(
        "SushiSwap", *st.weth, units(1'000'000, 18), t,
        units(200'000'000, 18), true));
  }
  st.u.fund_flashloan_providers(*st.weth, units(50'000'000, 18));
}

population_tx run_benign_tx(pop_state& st, core::flash_provider provider) {
  // Simple two-legged arbitrage financed by a flash loan; the fee shortfall
  // is covered by the bot's own working capital (a small mint).
  const std::size_t k = st.rnd.next_below(st.benign_tokens.size());
  uniswap_v2_pair* a = st.benign_pools[2 * k];
  uniswap_v2_pair* b = st.benign_pools[2 * k + 1];
  if (st.rnd.next_bool(0.5)) std::swap(a, b);
  erc20& x = *st.benign_tokens[k];
  erc20& quote = *st.weth;
  const u256 amount = units(st.rnd.next_range(1, 60), 18);
  const u256 flash = amount * u256{st.rnd.next_range(1, 4)};

  const attacker_identity who = make_attacker(st.u);
  auto body = [&, amount, flash](chain::context& ctx) {
    const u256 got = swap_direct(ctx, *a, quote, amount,
                                 who.contract->addr());
    swap_direct(ctx, *b, x, got, who.contract->addr());
    // Working capital to cover AMM fees + flash premium.
    quote.mint(ctx, who.contract->addr(), flash / u256{50} + units(1, 18));
  };
  const chain::tx_receipt* rec = nullptr;
  switch (provider) {
    case core::flash_provider::uniswap: {
      // Borrow from a benign Uniswap pool of another token.
      const std::size_t j = (k + 1) % st.benign_tokens.size();
      rec = &run_flash_uniswap(st.u, who, *st.benign_pools[2 * j], quote,
                               flash, "pop-arb", body);
      break;
    }
    case core::flash_provider::aave:
      rec = &run_flash_aave(st.u, who, quote, flash, "pop-arb", body);
      break;
    case core::flash_provider::dydx:
      rec = &run_flash_dydx(st.u, who, quote, flash, "pop-arb", body);
      break;
  }
  if (!rec->success) {
    throw std::runtime_error("population benign tx reverted: " +
                             rec->revert_reason);
  }
  population_tx tx;
  tx.tx_index = rec->tx_index;
  tx.timestamp = rec->timestamp;
  tx.truth_attack = false;
  tx.attacker = who.eoa;
  tx.contract_addr = who.contract->addr();
  tx.borrowed_usd = st.u.usd_value(quote.id(), flash);
  return tx;
}

// ---------------------------------------------------------------------------
// schedule construction
// ---------------------------------------------------------------------------

/// Fig. 1 weekly intensity shape (relative weights).
double weekly_weight(int week) {
  if (week < 6) return 1.5;          // AAVE-only era, Jan-Feb 2020
  if (week < 19) return 5.0;         // before Uniswap V2 flash swaps
  if (week < 45) return 5.0 + (week - 19) * 3.4;  // growth into late 2020
  if (week < 93) return 95.0;        // plateau through Oct 2021
  return 42.0;                       // decline afterwards (paper §VI-A)
}

core::flash_provider pick_provider(pop_state& st, int week) {
  if (week < 19) {
    return st.rnd.next_bool(0.6) ? core::flash_provider::aave
                                 : core::flash_provider::dydx;
  }
  const double r = st.rnd.next_double();
  if (r < 0.76) return core::flash_provider::uniswap;
  if (r < 0.91) return core::flash_provider::dydx;
  return core::flash_provider::aave;
}

std::vector<attack_spec> build_attack_schedule(pop_state& st) {
  std::vector<attack_spec> specs;
  rng& rnd = st.rnd;

  auto month_ts = [&](int year, unsigned month) {
    const std::int64_t base = timestamp_of({year, month, 1});
    return base + static_cast<std::int64_t>(rnd.next_below(27)) * 86'400 +
           static_cast<std::int64_t>(rnd.next_below(86'000));
  };
  // Heavy-tailed profits: most attacks small (tens to a few thousand USD),
  // a handful of mid six-figure hits, one $6.1M headline (Table VII).
  auto profit = [&]() {
    if (rnd.next_bool(0.04)) return rnd.next_log_uniform(80'000.0, 400'000.0);
    return rnd.next_log_uniform(20.0, 8'000.0);
  };

  // Unknown-attack month allocation (Fig. 8 shape). 36 of the 109 unknown
  // attacks sit in the two fixed bursts (Balancer Oct 2020, Yearn Feb
  // 2021); the other 73 are drawn here: Jun-Dec 2020 ramping into the
  // surge, 2021 declining, a trickle into Apr 2022.
  std::vector<std::pair<int, unsigned>> months;
  auto push_month = [&](int year, unsigned m, int n) {
    for (int i = 0; i < n; ++i) months.emplace_back(year, m);
  };
  push_month(2020, 6, 2);
  push_month(2020, 7, 2);
  for (unsigned m = 8; m <= 11; ++m) push_month(2020, m, 3);
  push_month(2020, 12, 4);  // 20 in 2020
  const int counts_2021[12] = {6, 5, 4, 4, 3, 3, 3, 3, 3, 3, 2, 2};  // 41
  for (unsigned m = 1; m <= 12; ++m) push_month(2021, m, counts_2021[m - 1]);
  push_month(2022, 1, 4);
  push_month(2022, 2, 3);
  push_month(2022, 3, 3);
  push_month(2022, 4, 2);   // 12 in 2022 -> 73 total
  std::size_t month_cursor = 0;
  auto next_unknown_ts = [&]() {
    const auto [y, m] = months.at(month_cursor++ % months.size());
    return month_ts(y, m);
  };
  // FP strategies get their own timeline (they are not Fig. 8 subjects).
  auto next_fp_ts = [&]() {
    const int pick = static_cast<int>(rnd.next_below(19));
    const int y = 2020 + (pick + 8) / 12;
    const unsigned m = static_cast<unsigned>((pick + 8) % 12) + 1;
    return month_ts(y, m);
  };

  int remaining_sbs_rounds_wrong = 9;  // SBS attacks that spuriously trip MBS
  int remaining_dual = 7;              // genuine SBS+MBS attacks

  auto add = [&](recipe kind, const std::string& victim,
                 const std::string& token, int attacker, int contract,
                 std::int64_t ts, bool known) {
    attack_spec s;
    s.kind = kind;
    s.victim = victim;
    s.token = token;
    s.attacker_idx = attacker;
    s.contract_idx = contract;
    s.timestamp = ts;
    s.known_or_repeat = known;
    s.target_profit_usd = profit();
    s.borrow_multiplier = rnd.next_log_uniform(0.05, 2'000.0);
    s.self_funded = rnd.next_bool(0.06);
    specs.push_back(s);
  };

  // --- Balancer: 31 attacks, 5 attackers, 14 contracts, 13 assets -------
  {
    // attacker 0: the 25-attacks-in-ten-minutes burst (paper §VI-D1),
    // 8 contracts over 9 assets, KRP+SBS mix.
    const std::int64_t burst = timestamp_of({2020, 10, 14}) + 7'200;
    for (int i = 0; i < 25; ++i) {
      const std::string token = "BAL" + std::to_string(i % 9);
      add(i < 13 ? recipe::krp : recipe::sbs, "Balancer", token, 0, i % 8,
          burst + i * 24, false);
    }
    // attackers 1..4: six more attacks, 6 contracts, 4 more assets.
    for (int i = 0; i < 6; ++i) {
      const std::string token = "BAL" + std::to_string(9 + i % 4);
      add(recipe::sbs, "Balancer", token, 1 + i % 4, 10 + i,
          next_unknown_ts(), false);
    }
  }
  // --- Uniswap: 16 attacks, 6 attackers, 8 contracts, 5 assets ----------
  {
    const std::pair<int, int> pairs[8] = {{0, 0}, {1, 0}, {2, 0}, {3, 0},
                                          {4, 0}, {5, 0}, {0, 1}, {1, 1}};
    for (int i = 0; i < 16; ++i) {
      const auto [attacker, contract] = pairs[i % 8];
      add(recipe::sbs, "Uniswap", "UNI" + std::to_string(i % 5), attacker,
          contract, next_unknown_ts(), false);
    }
  }
  // --- Yearn: 11 attacks, one bot, one contract, one asset, 40 minutes --
  {
    const std::int64_t burst = timestamp_of({2021, 2, 9}) + 36'000;
    for (int i = 0; i < 11; ++i) {
      add(recipe::mbs, "Yearn", "YUSD", 0, 0, burst + i * 215, false);
    }
  }
  // --- the rest: 84 attacks over assorted victims ------------------------
  {
    const std::vector<std::string> other_victims{
        "Curve",        "Cream Finance", "Indexed Finance", "Punk Protocol",
        "BT.Finance",   "SushiSwap",     "Alpha Finance",   "DODO",
        "Value DeFi",   "Warp Finance",  "Sanshu",          "Opyn"};
    // Budget over the remaining 84 attacks: 8 KRP, 7 dual SBS+MBS,
    // 9 SBS-with-wrong-MBS, 42 pure MBS, 18 pure SBS.
    int krp_left = 8;
    int mbs_left = 42;
    int sbs_left = 18;
    const int total = 84;
    // 33 of these are the known/repeat stand-ins (paper §VI-D, Fig. 8
    // charts only the other 109 population attacks).
    int known_left = 33;
    for (int i = 0; i < total; ++i) {
      const std::string victim = other_victims[static_cast<std::size_t>(i) %
                                               other_victims.size()];
      const std::string token =
          "T" + std::to_string(i % 4) + victim.substr(0, 3);
      recipe kind;
      bool mbs_wrong = false;
      if (krp_left > 0 && i % 10 == 0) {
        kind = recipe::krp;
        --krp_left;
      } else if (remaining_dual > 0 && i % 9 == 1) {
        kind = recipe::sbs_rounds;  // genuine SBS+MBS
        --remaining_dual;
      } else if (remaining_sbs_rounds_wrong > 0 && i % 9 == 2) {
        kind = recipe::sbs_rounds;  // MBS reading judged wrong
        mbs_wrong = true;
        --remaining_sbs_rounds_wrong;
      } else if (mbs_left > 0 && (sbs_left == 0 || i % 10 < 7)) {
        kind = recipe::mbs;
        --mbs_left;
      } else if (sbs_left > 0) {
        kind = recipe::sbs;
        --sbs_left;
      } else {
        kind = recipe::mbs;
        --mbs_left;
      }
      attack_spec s;
      s.kind = kind;
      s.victim = victim;
      s.token = token;
      s.attacker_idx = i % 3;
      s.contract_idx = i % 2;
      const bool known = known_left > 0 && i % 5 != 4;
      if (known) --known_left;
      s.known_or_repeat = known;
      s.timestamp = known
                        ? month_ts(2020 + (i % 2), 2 + (i % 10))
                        : next_unknown_ts();
      s.truth_mbs_override_off = mbs_wrong;
      s.target_profit_usd = profit();
      s.borrow_multiplier = rnd.next_log_uniform(0.05, 2'000.0);
      s.self_funded = rnd.next_bool(0.06);
      specs.push_back(s);
    }
  }
  // One headline attack: the $6.1M maximum of Table VII.
  specs[40].target_profit_usd = 6'100'000.0;

  // --- false positives ----------------------------------------------------
  // 38 benign compounding strategies: 32 by labeled yield aggregators,
  // 6 by anonymous bots; 11 of them also trip SBS. Together with the 9
  // wrong-MBS readings on SBS attacks this yields the paper's 47 MBS FPs.
  for (int i = 0; i < 38; ++i) {
    attack_spec s;
    s.kind = i < 11 ? recipe::fp_compound_sbs : recipe::fp_compound;
    s.victim = i % 2 == 0 ? "Harvest" : "Pickle";
    s.token = "C" + std::to_string(i % 6);
    // Disjoint identity spaces: aggregator bots share 7 EOAs; anonymous
    // bots are one-off (a shared key would otherwise let execution order
    // decide which label the cached contract gets).
    s.attacker_idx = i < 32 ? 50 + i % 7 : 90 + i;
    s.contract_idx = 0;
    s.from_aggregator = i < 32;
    s.timestamp = next_fp_ts();
    s.target_profit_usd = rnd.next_log_uniform(200.0, 20'000.0);
    specs.push_back(s);
  }

  // Gray-zone behaviors for the threshold ablation: benign at the paper's
  // thresholds, flagged when they are relaxed.
  for (int i = 0; i < 18; ++i) {
    attack_spec s;
    s.kind = i % 3 == 0 ? recipe::gray_krp
                        : (i % 3 == 1 ? recipe::gray_sbs : recipe::gray_mbs);
    s.victim = i % 2 == 0 ? "QuickSwap" : "MDEX";
    s.token = "G" + std::to_string(i % 5);
    s.attacker_idx = 80 + i;
    s.gray = true;
    s.timestamp = next_fp_ts();
    s.target_profit_usd = rnd.next_log_uniform(100.0, 5'000.0);
    specs.push_back(s);
  }

  std::sort(specs.begin(), specs.end(),
            [](const attack_spec& a, const attack_spec& b) {
              return a.timestamp < b.timestamp;
            });
  return specs;
}

}  // namespace

population generate_population(universe& u, const population_params& params) {
  pop_state st{u, params.seed};
  population out;
  out.aggregator_apps = {"Beefy", "Kyber", "Harvest", "Yearn.finance"};

  build_benign_infra(st);

  // Benign schedule: weekly buckets over Jan 2020 .. Apr 2022.
  const int weeks = 122;
  std::vector<double> weights(weeks);
  double total_w = 0;
  for (int w = 0; w < weeks; ++w) {
    weights[static_cast<std::size_t>(w)] = weekly_weight(w);
    total_w += weights[static_cast<std::size_t>(w)];
  }
  struct slot {
    std::int64_t ts;
    int week;
  };
  std::vector<slot> benign_slots;
  const std::int64_t start = timestamp_of({2020, 1, 1});
  for (int w = 0; w < weeks; ++w) {
    const int n = static_cast<int>(params.benign_txs *
                                   weights[static_cast<std::size_t>(w)] /
                                   total_w);
    for (int i = 0; i < n; ++i) {
      benign_slots.push_back(
          slot{start + w * 7L * 86'400 +
                   static_cast<std::int64_t>(st.rnd.next_below(7 * 86'400)),
               w});
    }
  }

  std::vector<attack_spec> attacks;
  if (params.include_attacks) attacks = build_attack_schedule(st);

  // Merge the two schedules by time and execute.
  std::sort(benign_slots.begin(), benign_slots.end(),
            [](const slot& a, const slot& b) { return a.ts < b.ts; });
  std::size_t bi = 0;
  std::size_t ai = 0;
  while (bi < benign_slots.size() || ai < attacks.size()) {
    const bool take_benign =
        ai >= attacks.size() ||
        (bi < benign_slots.size() &&
         benign_slots[bi].ts <= attacks[ai].timestamp);
    if (take_benign) {
      u.bc().advance_to_time(benign_slots[bi].ts);
      out.txs.push_back(
          run_benign_tx(st, pick_provider(st, benign_slots[bi].week)));
      ++bi;
    } else {
      const attack_spec& s = attacks[ai];
      u.bc().advance_to_time(s.timestamp);
      switch (s.kind) {
        case recipe::krp:
          out.txs.push_back(run_krp_recipe(st, s));
          break;
        case recipe::sbs:
          out.txs.push_back(run_sbs_recipe(st, s, 1));
          break;
        case recipe::sbs_rounds: {
          population_tx tx = run_sbs_recipe(st, s, 3);
          out.txs.push_back(tx);
          break;
        }
        case recipe::mbs:
          out.txs.push_back(run_mbs_recipe(st, s));
          break;
        case recipe::fp_compound:
          out.txs.push_back(run_fp_compound(st, s, false));
          break;
        case recipe::fp_compound_sbs:
          out.txs.push_back(run_fp_compound(st, s, true));
          break;
        case recipe::gray_krp:
          out.txs.push_back(run_krp_recipe(st, s));
          break;
        case recipe::gray_sbs:
          out.txs.push_back(run_gray_sbs(st, s));
          break;
        case recipe::gray_mbs:
          out.txs.push_back(run_mbs_recipe(st, s));
          break;
      }
      ++ai;
    }
  }
  // ---- §VI-D2 post-pass: attackers hide their traces -----------------------
  // Roughly a quarter of attackers route profits through a mixer, most of
  // the rest through chains of fresh intermediary accounts; some also
  // selfdestruct the attack contract.
  {
    auto& weth_mixer = st.u.bc().deploy<defi::mixer>(
        st.u.bc().create_user_account("Tornado Cash"), "Tornado Cash",
        *st.weth, units(5, 16));
    std::set<address> laundered;  // one pass per attacker contract
    for (population_tx& tx : out.txs) {
      if (!tx.truth_attack || tx.profit_token.empty()) continue;
      if (!laundered.insert(tx.contract_addr).second) continue;
      erc20& t = st.u.tok(tx.profit_token);
      const u256 balance =
          t.balance_of(st.u.bc().state(), tx.contract_addr);
      if (balance.is_zero()) continue;
      const double roll = st.rnd.next_double();
      tx.selfdestructed = st.rnd.next_bool(0.3);
      if (roll < 0.25 && &t == st.weth &&
          balance >= weth_mixer.denomination()) {
        // Mixer exit: deposit up to three notes, then withdraw them to a
        // fresh address in later transactions.
        tx.laundering = 2;
        const std::uint64_t notes = std::min<std::uint64_t>(
            3, (balance / weth_mixer.denomination()).to_u64());
        const address fresh = st.u.bc().create_user_account();
        auto* c = st.u.bc().find_as<attack_contract>(tx.contract_addr);
        for (std::uint64_t n = 0; n < notes; ++n) {
          const u256 commitment{st.rnd.next()};
          st.u.bc().execute(tx.attacker, "mixer deposit",
                            [&](chain::context& ctx) {
                              c->sweep(ctx, t, tx.attacker,
                                       weth_mixer.denomination());
                              t.approve(ctx, weth_mixer.addr(),
                                        weth_mixer.denomination());
                              weth_mixer.deposit(ctx, commitment);
                            });
          st.u.bc().execute(fresh, "mixer withdraw",
                            [&](chain::context& ctx) {
                              weth_mixer.withdraw(ctx, commitment, fresh);
                            });
        }
      } else if (roll < 0.85) {
        // Multi-hop exit through 2-4 fresh intermediary accounts.
        tx.laundering = 1;
        const int hops = 2 + static_cast<int>(st.rnd.next_below(3));
        address cur = tx.contract_addr;
        const u256 moving = balance;
        auto* c = st.u.bc().find_as<attack_contract>(tx.contract_addr);
        for (int h = 0; h < hops; ++h) {
          const address next = st.u.bc().create_user_account();
          const address controller = h == 0 ? tx.attacker : cur;
          st.u.bc().execute(controller, "hop", [&](chain::context& ctx) {
            if (h == 0) {
              c->sweep(ctx, t, next, moving);
            } else {
              t.transfer(ctx, next, moving);
            }
          });
          cur = next;
        }
      }
      if (tx.selfdestructed) {
        st.u.bc().execute(tx.attacker, "cleanup", [&](chain::context& ctx) {
          auto* c = st.u.bc().find_as<attack_contract>(tx.contract_addr);
          if (c != nullptr) c->self_destruct(ctx);
        });
      }
    }
  }

  u.reseed_labels();
  // reseed_labels wipes manual EOA tags; restore aggregator labels.
  for (const auto& [key, eoa] : st.eoas) {
    (void)key;
  }
  for (const auto& [key, c] : st.contracts) {
    if (c->app_name() == "Beefy") {
      u.labels().tag(c->addr(), "Beefy");
      u.labels().tag(u.bc().creations().root_of(c->addr()), "Beefy");
    }
  }
  return out;
}

}  // namespace leishen::scenarios
