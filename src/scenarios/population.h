// Synthetic wild population (the substitute for the paper's 272,984 flash
// loan transactions in Ethereum's first 14,500,000 blocks).
//
// Generates, on a 2020-01 .. 2022-04 timeline shaped like paper Fig. 1:
//   - a large benign background of flash loan uses (arbitrage, collateral
//     swaps, aggregator routing) from the three providers in the paper's
//     observed proportions (Uniswap ~76%, dYdX ~15%, AAVE ~8%);
//   - 142 true flpAttacks with the Table V / Table VI structure: 21 KRP,
//     68 SBS (7 also MBS), 60 MBS instances; victim concentration Balancer
//     31 (5 attackers / 14 contracts / 13 assets), Uniswap 16 (6/8/5),
//     Yearn 11 (1/1/1, one bot repeating); 9 SBS attacks that also trip
//     MBS spuriously;
//   - the false-positive sources: 47 benign vault-compounding strategies
//     that look like MBS (32 run by labeled yield aggregators — the
//     heuristic's handle — and 15 by unlabeled bots), 11 of which also trip
//     SBS.
// Ground truth is recorded per (transaction, pattern) so the verification
// of Table V is mechanical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/patterns.h"
#include "scenarios/universe.h"

namespace leishen::scenarios {

struct population_params {
  std::uint64_t seed = 20230614;
  /// Benign background transactions (attacks and FP sources are extra).
  int benign_txs = 2'000;
  /// Multiply all counts related to the background only; detections are
  /// unaffected (the interesting set is fixed).
  bool include_attacks = true;
};

struct population_tx {
  std::uint64_t tx_index = 0;
  std::int64_t timestamp = 0;
  // Ground truth, per pattern (manual-verification stand-in).
  bool truth_attack = false;
  bool truth_krp = false;
  bool truth_sbs = false;
  bool truth_mbs = false;
  /// Initiated by a labeled yield aggregator (the §VI-C heuristic's input).
  bool from_aggregator = false;
  /// Sub-threshold gray-zone behavior (ablation subject, §VII).
  bool gray = false;
  /// True for the stand-ins of the 22 collected attacks + 11 identical
  /// repeats ("known" in §VI-D; Fig. 8 charts only the unknown remainder).
  bool known_or_repeat = false;
  std::string victim_app;   // for Table VI (empty when benign)
  std::string target_token; // manipulated asset symbol
  address attacker;         // EOA
  address contract_addr;    // borrower contract
  double borrowed_usd = 0.0;
  std::string profit_token; // symbol the attacker's profit is held in
  /// Ground truth for the §VI-D2 laundering post-pass (0=none, 1=multi-hop,
  /// 2=mixer); selfdestruct recorded separately.
  int laundering = 0;
  bool selfdestructed = false;
};

struct population {
  std::vector<population_tx> txs;  // every generated flash loan tx
  /// Applications the §VI-C heuristic treats as yield aggregators.
  std::vector<std::string> aggregator_apps;
};

/// Generate the population into `u`. Deterministic per params.seed.
population generate_population(universe& u, const population_params& params);

}  // namespace leishen::scenarios
