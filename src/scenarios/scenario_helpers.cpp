#include "scenarios/scenario_helpers.h"

#include <utility>

namespace leishen::scenarios {

attacker_identity make_attacker(universe& u) {
  const address eoa = u.bc().create_user_account();
  auto& c = u.bc().deploy<attack_contract>(eoa, "");
  return attacker_identity{eoa, &c};
}

u256 swap_direct(chain::context& ctx, defi::uniswap_v2_pair& pair,
                 erc20& token_in, const u256& amount_in, const address& to) {
  const u256 out = pair.quote_out(ctx.state(), token_in, amount_in);
  token_in.transfer(ctx, pair.addr(), amount_in);
  if (&pair.token0() == &token_in) {
    pair.swap(ctx, u256{}, out, to);
  } else {
    pair.swap(ctx, out, u256{}, to);
  }
  return out;
}

const chain::tx_receipt& run_flash_dydx(universe& u,
                                        const attacker_identity& who,
                                        erc20& tok, const u256& amount,
                                        const std::string& description,
                                        attack_contract::body_fn body) {
  attack_contract& c = *who.contract;
  c.set_callback([&, body = std::move(body)](chain::context& ctx) {
    body(ctx);
    tok.approve(ctx, u.dydx().addr(), amount + u256{2});
  });
  return u.bc().execute(who.eoa, description, [&](chain::context& ctx) {
    c.run(ctx, [&](chain::context& inner) {
      u.dydx().operate(inner, c, tok, amount);
    });
  });
}

const chain::tx_receipt& run_flash_aave(universe& u,
                                        const attacker_identity& who,
                                        erc20& tok, const u256& amount,
                                        const std::string& description,
                                        attack_contract::body_fn body) {
  attack_contract& c = *who.contract;
  const u256 fee = amount * u256{defi::aave_pool::kFeeBps} / u256{10'000};
  c.set_callback([&, body = std::move(body), fee](chain::context& ctx) {
    body(ctx);
    tok.transfer(ctx, u.aave().addr(), amount + fee);
  });
  return u.bc().execute(who.eoa, description, [&](chain::context& ctx) {
    c.run(ctx, [&](chain::context& inner) {
      u.aave().flash_loan(inner, c, tok, amount);
    });
  });
}

const chain::tx_receipt& run_flash_uniswap(universe& u,
                                           const attacker_identity& who,
                                           defi::uniswap_v2_pair& pool,
                                           erc20& tok, const u256& amount,
                                           const std::string& description,
                                           attack_contract::body_fn body) {
  attack_contract& c = *who.contract;
  const u256 repay =
      amount * u256{defi::uniswap_v2_pair::kFeeDen} /
          u256{defi::uniswap_v2_pair::kFeeNum} +
      u256{1};
  c.set_callback([&, body = std::move(body), repay](chain::context& ctx) {
    body(ctx);
    tok.transfer(ctx, pool.addr(), repay);
  });
  return u.bc().execute(who.eoa, description, [&](chain::context& ctx) {
    c.run(ctx, [&](chain::context& inner) {
      if (&pool.token0() == &tok) {
        pool.swap(inner, amount, u256{}, c.addr(), &c);
      } else {
        pool.swap(inner, u256{}, amount, c.addr(), &c);
      }
    });
  });
}

split_pool::split_pool(chain::blockchain& bc, address self,
                       std::string app_name, erc20& base, erc20& quote)
    : contract{self, std::move(app_name), "SplitPool"},
      base_{base},
      quote_{quote},
      satellite_{bc.create_user_account()} {}

void split_pool::trade(chain::context& ctx, erc20& token_in,
                       const u256& amount_in, const u256& amount_out) {
  chain::context::call_guard guard{ctx, addr(), "swapIn"};
  const address trader = ctx.sender();
  erc20& token_out = &token_in == &base_ ? quote_ : base_;
  // Input lands in the pool account; output is paid by the satellite,
  // splitting the trade across two unrelated-looking accounts.
  token_in.transfer_from(ctx, trader, addr(), amount_in);
  token_out.transfer_from(ctx, satellite_, trader, amount_out);
}

}  // namespace leishen::scenarios
