#include "scenarios/universe.h"

#include <cmath>
#include <stdexcept>

namespace leishen::scenarios {

universe::universe(std::uint64_t start_block) : bc_{start_block} {
  whale_ = bc_.create_user_account();

  // Core infrastructure, each under its ground-truth application.
  const address weth_dep = bc_.create_user_account(token::kWrappedEtherApp);
  weth_ = &bc_.deploy<token::weth>(weth_dep);
  set_usd_price(weth_->id(), 2'000.0);
  set_usd_price(chain::asset::ether(), 2'000.0);
  tokens_["WETH"] = weth_;

  const address uni_dep = bc_.create_user_account("Uniswap");
  uni_factory_ = &bc_.deploy<defi::uniswap_v2_factory>(uni_dep, "Uniswap");
  uni_router_ =
      &bc_.deploy<defi::uniswap_v2_router>(uni_dep, "Uniswap", *uni_factory_);

  const address aave_dep = bc_.create_user_account("Aave");
  aave_ = &bc_.deploy<defi::aave_pool>(aave_dep, "Aave");

  const address dydx_dep = bc_.create_user_account("dYdX");
  dydx_ = &bc_.deploy<defi::dydx_solo_margin>(dydx_dep, "dYdX");

  const address kyber_dep = bc_.create_user_account("Kyber");
  kyber_ = &bc_.deploy<defi::aggregator>(kyber_dep, "Kyber", *uni_router_, 5);

  const address comp_dep = bc_.create_user_account("Compound");
  oracle_ = &bc_.deploy<defi::price_oracle>(comp_dep, "Compound");
  compound_ = &bc_.deploy<defi::lending_pool>(comp_dep, "Compound", *oracle_,
                                              75);

  const address bzx_dep = bc_.create_user_account("bZx");
  // bZx ships explorer-decodable Borrow events; Compound's positions were
  // not decoded as trade actions (the Explorer baseline's visibility split).
  bzx_ = &bc_.deploy<defi::lending_pool>(bzx_dep, "bZx", *oracle_, 75,
                                         /*emit_trade_events=*/true);

  reseed_labels();
}

erc20& universe::make_token(const std::string& symbol, const std::string& app,
                            double usd_price, unsigned decimals) {
  if (const auto it = tokens_.find(symbol); it != tokens_.end()) {
    return *it->second;
  }
  const address dep = bc_.create_user_account(app);
  erc20& t = bc_.deploy<erc20>(dep, app, symbol, decimals);
  tokens_[symbol] = &t;
  set_usd_price(t.id(), usd_price);
  return t;
}

erc20& universe::tok(const std::string& symbol) const {
  const auto it = tokens_.find(symbol);
  if (it == tokens_.end()) {
    throw std::out_of_range("universe: unknown token " + symbol);
  }
  return *it->second;
}

double universe::usd_value(const chain::asset& a, const u256& amount) const {
  const auto it = usd_prices_.find(a);
  if (it == usd_prices_.end()) return 0.0;
  // Whole-token scaling: all our tokens use their declared decimals; find
  // decimals through the contract when available, default 18.
  unsigned decimals = 18;
  if (!a.is_ether()) {
    if (const auto* t = bc_.find_as<erc20>(a.contract_address())) {
      decimals = t->decimals();
    }
  }
  return amount.to_double() / std::pow(10.0, decimals) * it->second;
}

void universe::set_usd_price(const chain::asset& a, double price_per_whole) {
  usd_prices_[a] = price_per_whole;
}

defi::uniswap_v2_pair& universe::make_uniswap_pool(erc20& a,
                                                   const u256& amount_a,
                                                   erc20& b,
                                                   const u256& amount_b,
                                                   bool emit_trade_events) {
  auto& pair = uni_factory_->create_pair(a, b, emit_trade_events);
  bc_.execute(whale_, "seed " + a.symbol() + "/" + b.symbol(),
              [&](context& ctx) {
                a.mint(ctx, pair.addr(), amount_a);
                b.mint(ctx, pair.addr(), amount_b);
                pair.mint_liquidity(ctx, whale_);
              });
  return pair;
}

defi::uniswap_v2_pair& universe::make_app_pool(const std::string& app,
                                               erc20& a, const u256& amount_a,
                                               erc20& b, const u256& amount_b,
                                               bool emit_trade_events) {
  const address dep = bc_.create_user_account(app);
  auto& pair =
      bc_.deploy<defi::uniswap_v2_pair>(dep, app, a, b, emit_trade_events);
  bc_.execute(whale_, "seed " + app + " pool", [&](context& ctx) {
    a.mint(ctx, pair.addr(), amount_a);
    b.mint(ctx, pair.addr(), amount_b);
    pair.mint_liquidity(ctx, whale_);
  });
  return pair;
}

defi::stableswap_pool& universe::make_stable_pool(const std::string& app,
                                                  erc20& c0,
                                                  const u256& amount0,
                                                  erc20& c1,
                                                  const u256& amount1,
                                                  std::uint64_t amplification) {
  const address dep = bc_.create_user_account(app);
  auto& pool =
      bc_.deploy<defi::stableswap_pool>(dep, app, c0, c1, amplification, 4);
  bc_.execute(whale_, "seed " + app + " stable pool", [&](context& ctx) {
    c0.mint(ctx, whale_, amount0);
    c1.mint(ctx, whale_, amount1);
    c0.approve(ctx, pool.addr(), amount0);
    c1.approve(ctx, pool.addr(), amount1);
    pool.add_liquidity(ctx, amount0, amount1, whale_);
  });
  return pool;
}

defi::vault& universe::make_vault(const std::string& app,
                                  const std::string& symbol,
                                  erc20& underlying, erc20& invested_token,
                                  defi::stableswap_pool& pool,
                                  const u256& seed_deposit,
                                  const u256& invested, bool emit_events) {
  const address dep = bc_.create_user_account(app);
  auto& v = bc_.deploy<defi::vault>(dep, app, symbol, underlying,
                                    invested_token, pool, emit_events);
  set_usd_price(v.id(), usd_prices_.count(underlying.id())
                            ? usd_prices_.at(underlying.id())
                            : 1.0);
  bc_.execute(whale_, "seed " + app + " vault", [&](context& ctx) {
    underlying.mint(ctx, whale_, seed_deposit);
    underlying.approve(ctx, v.addr(), seed_deposit);
    v.deposit(ctx, seed_deposit);
  });
  if (!invested.is_zero()) {
    // The strategy position was accumulated before our window: mint the
    // invested tokens straight to the vault instead of distorting the
    // pricing pool with a giant setup swap.
    bc_.execute(whale_, "strategy position " + app, [&](context& ctx) {
      invested_token.mint(ctx, v.addr(), invested);
    });
  }
  return v;
}

void universe::fund_flashloan_providers(erc20& t, const u256& amount) {
  bc_.execute(whale_, "fund flash loan providers", [&](context& ctx) {
    t.mint(ctx, whale_, amount * u256{2});
    t.approve(ctx, aave_->addr(), amount);
    aave_->deposit(ctx, t, amount);
    t.approve(ctx, dydx_->addr(), amount);
    dydx_->fund(ctx, t, amount);
  });
}

void universe::airdrop(erc20& t, const address& to, const u256& amount) {
  bc_.execute(whale_, "airdrop " + t.symbol(), [&](context& ctx) {
    t.mint(ctx, to, amount);
  });
}

void universe::reseed_labels(const std::vector<std::string>& exclude_apps) {
  labels_ = etherscan::label_db{};
  labels_.seed_from_chain(bc_, exclude_apps);
}

}  // namespace leishen::scenarios
