#include "scenarios/known_attacks.h"

#include <stdexcept>

#include "common/sim_time.h"
#include "core/flashloan_id.h"
#include "scenarios/scenario_helpers.h"

namespace leishen::scenarios {
namespace {

using core::attack_pattern;
using core::flash_provider;
using defi::lending_pool;
using defi::uniswap_v2_pair;

u256 whole(std::uint64_t n) { return units(n, 18); }

// ---------------------------------------------------------------------------
// Template A — margin-financed SBS (the bZx-1 mechanism generalized): buy
// the target cheap, poke the victim platform into pumping the pool with its
// own money (leveraged margin trade), sell the bought amount symmetrically
// at the inflated price.
// ---------------------------------------------------------------------------
struct margin_sbs_opts {
  std::string token_sym;    // the manipulated token X
  std::string quote_sym;    // quote currency (e.g. WBNB)
  std::string app;          // victim application (the margin desk)
  std::string pool_app;     // the third-party AMM whose pool gets pumped
  std::uint64_t pool_quote; // pool reserves, whole tokens
  std::uint64_t pool_x;
  std::uint64_t q1;         // entry buy size (quote)
  std::uint64_t stake;      // margin stake; pump = stake * lev (victim money)
  std::uint64_t lev;
  std::uint64_t flash;      // flash loan size (quote)
  bool sell_on_second_pool = false;  // breaks DeFiRanger account symmetry
  bool sell_via_aggregator = false;  // ditto, through Kyber
  flash_provider provider = flash_provider::dydx;
};

known_attack run_margin_sbs(universe& u, int id, const std::string& name,
                            const std::string& pair_label,
                            const margin_sbs_opts& o) {
  auto& quote = u.make_token(o.quote_sym, o.quote_sym, 300.0);
  auto& x = u.make_token(o.token_sym, o.pool_app, 1.0);
  auto& pool = u.make_app_pool(o.pool_app, quote, whole(o.pool_quote), x,
                               whole(o.pool_x), /*emit_trade_events=*/false);
  uniswap_v2_pair* pool2 = nullptr;
  if (o.sell_on_second_pool) {
    pool2 = &u.make_app_pool(o.pool_app, quote, whole(o.pool_quote), x,
                             whole(o.pool_x), false);
  }
  const address margin_dep = u.bc().create_user_account(o.app);
  auto& margin = u.bc().deploy<lending_pool>(margin_dep, o.app, u.oracle(),
                                             75, false);
  u.airdrop(quote, margin.addr(), whole(o.stake * o.lev * 2));
  u.fund_flashloan_providers(quote, whole(o.flash * 2));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  u256 x1;
  auto body = [&](context& ctx) {
    // t1: symmetric entry buy.
    x1 = swap_direct(ctx, pool, quote, whole(o.q1), who.contract->addr());
    // t2: victim-funded pump.
    quote.approve(ctx, margin.addr(), whole(o.stake));
    margin.margin_trade(ctx, quote, whole(o.stake), o.lev, pool);
    // t3: symmetric exit at the inflated price.
    uniswap_v2_pair& out_pool = pool2 != nullptr ? *pool2 : pool;
    if (o.sell_via_aggregator) {
      x.approve(ctx, u.kyber().addr(), x1);
      u.kyber().trade_on(ctx, out_pool, x, x1);
    } else {
      swap_direct(ctx, out_pool, x, x1, who.contract->addr());
    }
  };
  const chain::tx_receipt* rec = nullptr;
  if (o.provider == flash_provider::dydx) {
    rec = &run_flash_dydx(u, who, quote, whole(o.flash), name, body);
  } else {
    rec = &run_flash_aave(u, who, quote, whole(o.flash), name, body);
  }
  if (!rec->success) {
    throw std::runtime_error(name + " reconstruction reverted: " +
                             rec->revert_reason);
  }
  return known_attack{.id = id,
                      .name = name,
                      .victim_app = o.app,
                      .pair_label = pair_label,
                      .true_patterns = {attack_pattern::sbs},
                      .tx_index = rec->tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// ---------------------------------------------------------------------------
// Template B — vault MBS (the Harvest mechanism): per round, deposit the
// underlying, pump the vault's pricing pool so the share price rises,
// withdraw at the inflated price, unwind the pump.
// ---------------------------------------------------------------------------
struct vault_mbs_opts {
  std::string underlying_sym;
  std::string invested_sym;
  std::string share_sym;
  std::string pool_app;  // pricing pool's application (e.g. "Curve")
  std::string app;       // the vault application (victim)
  bool vault_events = false;
  int rounds = 3;
  int chunks = 1;  // deposits per round; 2 breaks DeFiRanger's symmetry
  std::uint64_t deposit_m;
  std::uint64_t pump_m;
  std::uint64_t pool_m;
  std::uint64_t vault_seed_m;
  std::uint64_t vault_invested_m;
  std::uint64_t amp = 20;
  std::uint64_t flash_m;
  flash_provider provider = flash_provider::aave;
};

known_attack run_vault_mbs(universe& u, int id, const std::string& name,
                           const std::string& pair_label,
                           const vault_mbs_opts& o) {
  auto& un = u.make_token(o.underlying_sym, o.underlying_sym, 1.0);
  auto& inv = u.make_token(o.invested_sym, o.invested_sym, 1.0);
  auto& pool = u.make_stable_pool(o.pool_app, un, units(o.pool_m, 24), inv,
                                  units(o.pool_m, 24), o.amp);
  auto& v = u.make_vault(o.app, o.share_sym, un, inv, pool,
                         units(o.vault_seed_m, 24),
                         units(o.vault_invested_m, 24), o.vault_events);
  defi::uniswap_v2_pair* flash_pool = nullptr;
  if (o.provider == flash_provider::uniswap) {
    flash_pool = &u.make_uniswap_pool(un, units(o.flash_m * 3, 24), u.weth(),
                                      whole(o.flash_m * 2), true);
  } else {
    u.fund_flashloan_providers(un, units(o.flash_m * 2, 24));
  }
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    const u256 chunk =
        units(o.deposit_m, 24) / u256{static_cast<std::uint64_t>(o.chunks)};
    for (int r = 0; r < o.rounds; ++r) {
      u256 shares;
      for (int c = 0; c < o.chunks; ++c) {
        un.approve(ctx, v.addr(), chunk);
        shares += v.deposit(ctx, chunk);
      }
      un.approve(ctx, pool.addr(), units(o.pump_m, 24));
      const u256 got =
          pool.exchange(ctx, 0, 1, units(o.pump_m, 24), who.contract->addr());
      v.withdraw(ctx, shares);
      inv.approve(ctx, pool.addr(), got);
      pool.exchange(ctx, 1, 0, got, who.contract->addr());
    }
  };
  const chain::tx_receipt* rec = nullptr;
  switch (o.provider) {
    case flash_provider::uniswap:
      rec = &run_flash_uniswap(u, who, *flash_pool, un, units(o.flash_m, 24),
                               name, body);
      break;
    case flash_provider::aave:
      rec = &run_flash_aave(u, who, un, units(o.flash_m, 24), name, body);
      break;
    case flash_provider::dydx:
      rec = &run_flash_dydx(u, who, un, units(o.flash_m, 24), name, body);
      break;
  }
  if (!rec->success) {
    throw std::runtime_error(name + " reconstruction reverted: " +
                             rec->revert_reason);
  }
  return known_attack{.id = id,
                      .name = name,
                      .victim_app = o.app,
                      .pair_label = pair_label,
                      .true_patterns = {attack_pattern::mbs},
                      .tx_index = rec->tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// ---------------------------------------------------------------------------
// Template C — batch-buy KRP on twin pools: >= 5 rising buys on one pool,
// exit into a second (richer) pool of the same application.
// ---------------------------------------------------------------------------
struct twin_krp_opts {
  std::string token_sym;
  std::string quote_sym;
  std::string app;
  bool explorer_visible = false;  // false -> app pools are silent
  int buys = 6;
  std::uint64_t buy_quote;  // per-buy size (quote)
  std::uint64_t pool1_quote;
  std::uint64_t pool1_x;
  std::uint64_t pool2_quote;
  std::uint64_t pool2_x;
  std::uint64_t flash;
};

known_attack run_twin_krp(universe& u, int id, const std::string& name,
                          const std::string& pair_label,
                          const twin_krp_opts& o) {
  auto& quote = u.make_token(o.quote_sym, o.quote_sym, 300.0);
  auto& x = u.make_token(o.token_sym, o.app, 0.5);
  auto& pool1 = u.make_app_pool(o.app, quote, whole(o.pool1_quote), x,
                                whole(o.pool1_x), o.explorer_visible);
  auto& pool2 = u.make_app_pool(o.app, quote, whole(o.pool2_quote), x,
                                whole(o.pool2_x), o.explorer_visible);
  u.fund_flashloan_providers(quote, whole(o.flash * 2));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    u256 bought;
    for (int i = 0; i < o.buys; ++i) {
      bought += swap_direct(ctx, pool1, quote, whole(o.buy_quote),
                            who.contract->addr());
    }
    swap_direct(ctx, pool2, x, bought, who.contract->addr());
  };
  const auto& rec =
      run_flash_dydx(u, who, quote, whole(o.flash), name, body);
  if (!rec.success) {
    throw std::runtime_error(name + " reconstruction reverted: " +
                             rec.revert_reason);
  }
  return known_attack{.id = id,
                      .name = name,
                      .victim_app = o.app,
                      .pair_label = pair_label,
                      .true_patterns = {attack_pattern::krp},
                      .tx_index = rec.tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// ---------------------------------------------------------------------------
// Individual reconstructions
// ---------------------------------------------------------------------------

// #1 bZx-1 (Feb 2020, SBS, ETH-WBTC ~125%): dYdX flash loan; collateralized
// WBTC borrow on Compound (honest price); bZx margin trade pumps the
// Uniswap pool with platform money; symmetric exit routed through Kyber.
known_attack attack_bzx1(universe& u) {
  auto& weth_tok = u.weth();
  auto& wbtc = u.make_token("WBTC", "WBTC", 70'000.0);
  auto& pair = u.make_uniswap_pool(weth_tok, whole(4'400), wbtc, whole(90),
                                   /*emit_trade_events=*/true);
  u.oracle().set_fixed(weth_tok, rate{u256{1}, u256{1}});
  u.oracle().set_fixed(wbtc, rate{u256{35}, u256{1}});
  u.airdrop(wbtc, u.compound().addr(), whole(200));
  u.airdrop(weth_tok, u.bzx().addr(), whole(7'000));
  u.fund_flashloan_providers(weth_tok, whole(25'000));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    // Step 2: collateralize 5,500 WETH, borrow 112 WBTC on Compound.
    weth_tok.approve(ctx, u.compound().addr(), whole(5'500));
    u.compound().borrow(ctx, weth_tok, whole(5'500), wbtc, whole(112));
    // Step 3/4: 1,127 WETH margin trade at 5x on bZx pumps the pool.
    weth_tok.approve(ctx, u.bzx().addr(), whole(1'127));
    u.bzx().margin_trade(ctx, weth_tok, whole(1'127), 5, pair);
    // Step 5: sell the 112 WBTC at the pumped price, via Kyber.
    wbtc.approve(ctx, u.kyber().addr(), whole(112));
    u.kyber().trade_on(ctx, pair, wbtc, whole(112));
  };
  const auto& rec =
      run_flash_dydx(u, who, weth_tok, whole(10'000), "bZx-1", body);
  if (!rec.success) {
    throw std::runtime_error("bZx-1 reverted: " + rec.revert_reason);
  }
  return known_attack{.id = 1,
                      .name = "bZx-1",
                      .victim_app = "bZx",
                      .pair_label = "ETH-WBTC",
                      .true_patterns = {attack_pattern::sbs},
                      .tx_index = rec.tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// #2 bZx-2 (Feb 2020, KRP, ETH-sUSD ~136%): 18 repeated 20-WETH buys of
// sUSD on Uniswap, then dump the whole position on bZx, whose oracle reads
// the pumped Uniswap pool.
known_attack attack_bzx2(universe& u) {
  auto& weth_tok = u.weth();
  auto& susd = u.make_token("sUSD", "Synthetix", 1.0);
  auto& pair = u.make_uniswap_pool(weth_tok, whole(500), susd,
                                   whole(130'000), true);
  u.oracle().set_fixed(weth_tok, rate{u256{1}, u256{1}});
  u.oracle().set_source(susd, pair);
  u.airdrop(weth_tok, u.bzx().addr(), whole(2'000));
  u.fund_flashloan_providers(weth_tok, whole(10'000));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  u256 bought;
  auto body = [&](context& ctx) {
    for (int i = 0; i < 18; ++i) {
      bought +=
          swap_direct(ctx, pair, weth_tok, whole(20), who.contract->addr());
    }
    // Sell: post all sUSD as collateral on bZx and borrow WETH at the
    // manipulated oracle price.
    susd.approve(ctx, u.bzx().addr(), bought);
    const u256 borrow =
        u.oracle().value_of(ctx.state(), susd, bought) * u256{74} /
        u256{100};
    u.bzx().borrow(ctx, susd, bought, weth_tok, borrow);
  };
  const auto& rec =
      run_flash_dydx(u, who, weth_tok, whole(4'500), "bZx-2", body);
  if (!rec.success) {
    throw std::runtime_error("bZx-2 reverted: " + rec.revert_reason);
  }
  return known_attack{.id = 2,
                      .name = "bZx-2",
                      .victim_app = "bZx",
                      .pair_label = "ETH-sUSD",
                      .true_patterns = {attack_pattern::krp},
                      .tx_index = rec.tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// #3 Balancer (Jun 2020, KRP): rising buys of STA against one Balancer pool
// and an exit against a second, far richer Balancer pool (standing in for
// the deflationary-token mechanics the real attack exploited).
known_attack attack_balancer(universe& u) {
  auto& weth_tok = u.weth();
  auto& sta = u.make_token("STA", "Statera", 0.02);
  const address bal_dep = u.bc().create_user_account("Balancer");
  auto& pool1 = u.bc().deploy<defi::balancer_pool>(
      bal_dep, "Balancer",
      std::vector<defi::balancer_pool::bound_token>{{&weth_tok, 1},
                                                    {&sta, 1}},
      20);
  auto& pool2 = u.bc().deploy<defi::balancer_pool>(
      bal_dep, "Balancer",
      std::vector<defi::balancer_pool::bound_token>{{&weth_tok, 1},
                                                    {&sta, 1}},
      20);
  u.bc().execute(u.whale(), "seed balancer pools", [&](context& ctx) {
    weth_tok.mint(ctx, u.whale(), whole(11'000));
    sta.mint(ctx, u.whale(), whole(2'000'000));
    weth_tok.approve(ctx, pool1.addr(), whole(1'000));
    sta.approve(ctx, pool1.addr(), whole(1'000'000));
    pool1.seed(ctx, {whole(1'000), whole(1'000'000)}, whole(100));
    weth_tok.approve(ctx, pool2.addr(), whole(10'000));
    sta.approve(ctx, pool2.addr(), whole(1'000'000));
    pool2.seed(ctx, {whole(10'000), whole(1'000'000)}, whole(100));
  });
  u.fund_flashloan_providers(weth_tok, whole(10'000));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    u256 bought;
    for (int i = 1; i <= 6; ++i) {
      const u256 in = whole(100ULL * static_cast<std::uint64_t>(i));
      weth_tok.approve(ctx, pool1.addr(), in);
      bought += pool1.swap_exact_in(ctx, weth_tok, in, sta,
                                    who.contract->addr());
    }
    sta.approve(ctx, pool2.addr(), bought);
    pool2.swap_exact_in(ctx, sta, bought, weth_tok, who.contract->addr());
  };
  const auto& rec =
      run_flash_dydx(u, who, weth_tok, whole(3'000), "Balancer", body);
  if (!rec.success) {
    throw std::runtime_error("Balancer reverted: " + rec.revert_reason);
  }
  return known_attack{.id = 3,
                      .name = "Balancer",
                      .victim_app = "Balancer",
                      .pair_label = "ETH-STA",
                      .true_patterns = {attack_pattern::krp},
                      .tx_index = rec.tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// #12/#19 — JulSwap & PancakeHunny: pattern-conforming attacks whose pools
// pay out from unlabeled satellite accounts, so neither account-level nor
// application-level trade identification can pair the legs (the paper's
// two LeiShen misses, §VI-B).
known_attack attack_split_pool(universe& u, int id, const std::string& name,
                               const std::string& app,
                               const std::string& pair_label,
                               const std::string& token_sym,
                               attack_pattern true_pattern, int rounds) {
  auto& wbnb = u.make_token("WBNB", "WBNB", 300.0);
  auto& x = u.make_token(token_sym, app, 1.0);
  const address dep = u.bc().create_user_account(app);
  auto& pool = u.bc().deploy<split_pool>(dep, app, wbnb, x);
  // Fund the satellite and pre-approve the pool (the on-chain equivalent of
  // an operator account the protocol pays out from).
  u.airdrop(x, pool.satellite(), whole(10'000'000));
  u.airdrop(wbnb, pool.satellite(), whole(1'000'000));
  u.bc().execute(pool.satellite(), "operator approvals", [&](context& ctx) {
    x.approve(ctx, pool.addr(), whole(10'000'000));
    wbnb.approve(ctx, pool.addr(), whole(1'000'000));
  });
  u.fund_flashloan_providers(wbnb, whole(100'000));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    for (int r = 0; r < rounds; ++r) {
      // Buy X (pool account takes WBNB in; satellite pays X out).
      wbnb.approve(ctx, pool.addr(), whole(1'000));
      pool.trade(ctx, wbnb, whole(1'000), whole(90'000));
      // Sell X back at a better rate (profit extracted from the victim).
      x.approve(ctx, pool.addr(), whole(90'000));
      pool.trade(ctx, x, whole(90'000), whole(1'050));
    }
  };
  const auto& rec = run_flash_dydx(u, who, wbnb, whole(5'000), name, body);
  if (!rec.success) {
    throw std::runtime_error(name + " reverted: " + rec.revert_reason);
  }
  return known_attack{.id = id,
                      .name = name,
                      .victim_app = app,
                      .pair_label = pair_label,
                      .true_patterns = {true_pattern},
                      .tx_index = rec.tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// No-clear-pattern attacks (#10, #11, #16, #18): flash-loan exploits whose
// profit comes from minting bugs, not a recognizable trade pattern.
known_attack attack_mint_exploit(universe& u, int id, const std::string& name,
                                 const std::string& app,
                                 const std::string& pair_label,
                                 const std::string& token_sym, int buys) {
  auto& wbnb = u.make_token("WBNB", "WBNB", 300.0);
  auto& x = u.make_token(token_sym, app, 1.0);
  auto& pool = u.make_app_pool(app, wbnb, whole(5'000), x, whole(500'000),
                               false);
  u.fund_flashloan_providers(wbnb, whole(50'000));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    u256 bought;
    for (int i = 0; i < buys; ++i) {
      bought +=
          swap_direct(ctx, pool, wbnb, whole(400), who.contract->addr());
    }
    // The minting bug: the protocol mints the attacker fresh tokens.
    x.mint(ctx, who.contract->addr(), whole(120'000));
    // One asymmetric dump of everything.
    swap_direct(ctx, pool, x, bought + whole(120'000),
                who.contract->addr());
  };
  const auto& rec = run_flash_dydx(u, who, wbnb, whole(2'000), name, body);
  if (!rec.success) {
    throw std::runtime_error(name + " reverted: " + rec.revert_reason);
  }
  return known_attack{.id = id,
                      .name = name,
                      .victim_app = app,
                      .pair_label = pair_label,
                      .true_patterns = {},
                      .tx_index = rec.tx_index,
                      .attacker = who.eoa,
                      .contract_addr = who.contract->addr()};
}

// #22 Saddle (Jan 2022, SBS + MBS): three profitable buy/sell rounds with a
// victim-funded pump inside the first round's symmetric pair.
known_attack attack_saddle(universe& u) {
  auto& wbnb = u.make_token("WBNB", "WBNB", 300.0);
  auto& x = u.make_token("saddleUSD", "Ellipsis", 1.0);
  auto& pool = u.make_app_pool("Ellipsis", wbnb, whole(1'000), x,
                               whole(100'000), false);
  const address dep = u.bc().create_user_account("Saddle Finance");
  auto& margin = u.bc().deploy<lending_pool>(dep, "Saddle Finance",
                                             u.oracle(), 75, false);
  u.airdrop(wbnb, margin.addr(), whole(10'000));
  u.fund_flashloan_providers(wbnb, whole(10'000));
  u.reseed_labels();

  const attacker_identity who = make_attacker(u);
  auto body = [&](context& ctx) {
    for (int round = 0; round < 3; ++round) {
      const u256 x1 =
          swap_direct(ctx, pool, wbnb, whole(300), who.contract->addr());
      wbnb.approve(ctx, margin.addr(), whole(50));
      margin.margin_trade(ctx, wbnb, whole(50), 10, pool);
      swap_direct(ctx, pool, x, x1, who.contract->addr());
    }
  };
  const auto& rec =
      run_flash_dydx(u, who, wbnb, whole(2'000), "Saddle Finance", body);
  if (!rec.success) {
    throw std::runtime_error("Saddle reverted: " + rec.revert_reason);
  }
  return known_attack{
      .id = 22,
      .name = "Saddle Finance",
      .victim_app = "Saddle Finance",
      .pair_label = "saddleUSD-sUSD",
      .true_patterns = {attack_pattern::sbs, attack_pattern::mbs},
      .tx_index = rec.tx_index,
      .attacker = who.eoa,
      .contract_addr = who.contract->addr()};
}

void fill_expectations(known_attack& a) {
  switch (a.id) {
    // Table IV: LeiShen column.
    case 1: case 2: case 3: case 4: case 5: case 6: case 8: case 9:
    case 13: case 14: case 15: case 17: case 20: case 21: case 22:
      a.leishen_expected = true;
      break;
    default:
      a.leishen_expected = false;
  }
  switch (a.id) {
    // Table IV: DeFiRanger column.
    case 5: case 6: case 7: case 8: case 13: case 14: case 20: case 21:
    case 22:
      a.defiranger_expected = true;
      break;
    default:
      a.defiranger_expected = false;
  }
  switch (a.id) {
    // Table IV: Explorer+LeiShen column.
    case 2: case 3: case 5: case 14:
      a.explorer_expected = true;
      break;
    default:
      a.explorer_expected = false;
  }
}

civil_date attack_date(int id) {
  switch (id) {
    case 1: return {2020, 2, 15};
    case 2: return {2020, 2, 18};
    case 3: return {2020, 6, 28};
    case 4: return {2020, 9, 29};
    case 5: return {2020, 10, 26};
    case 6: return {2020, 11, 6};
    case 7: return {2020, 11, 14};
    case 8: return {2021, 2, 4};
    case 9: return {2021, 5, 2};
    case 10: return {2021, 5, 12};
    case 11: return {2021, 5, 19};
    case 12: return {2021, 5, 27};
    case 13: return {2021, 5, 29};
    case 14: return {2021, 6, 5};
    case 15: return {2021, 6, 15};
    case 16: return {2021, 7, 10};
    case 17: return {2021, 7, 20};
    case 18: return {2021, 8, 12};
    case 19: return {2021, 10, 20};
    case 20: return {2021, 10, 24};
    case 21: return {2021, 11, 8};
    case 22: return {2022, 1, 11};
    default: return {2020, 1, 1};
  }
}

}  // namespace

known_attack run_known_attack(universe& u, int id) {
  u.bc().advance_to_time(timestamp_of(attack_date(id)));
  known_attack a;
  switch (id) {
    case 1:
      a = attack_bzx1(u);
      break;
    case 2:
      a = attack_bzx2(u);
      break;
    case 3:
      a = attack_balancer(u);
      break;
    case 4:  // Eminence — MBS via vault rounds, split deposits, no events.
      a = run_vault_mbs(u, 4, "Eminence", "DAI-EMN",
                        {.underlying_sym = "DAI",
                         .invested_sym = "eUSD",
                         .share_sym = "EMN",
                         .pool_app = "Eminence",
                         .app = "Eminence",
                         .vault_events = false,
                         .rounds = 3,
                         .chunks = 2,
                         .deposit_m = 10,
                         .pump_m = 12,
                         .pool_m = 20,
                         .vault_seed_m = 25,
                         .vault_invested_m = 20,
                         .amp = 50,
                         .flash_m = 30,
                         .provider = flash_provider::aave});
      break;
    case 5:  // Harvest Finance — the canonical vault MBS, explorer-visible.
      a = run_vault_mbs(u, 5, "Harvest Finance", "fUSDC-USDC",
                        {.underlying_sym = "USDC",
                         .invested_sym = "USDT",
                         .share_sym = "fUSDC",
                         .pool_app = "Curve",
                         .app = "Harvest",
                         .vault_events = true,
                         .rounds = 3,
                         .chunks = 1,
                         .deposit_m = 30,
                         .pump_m = 15,
                         .pool_m = 25,
                         .vault_seed_m = 60,
                         .vault_invested_m = 50,
                         .amp = 100,
                         .flash_m = 50,
                         .provider = flash_provider::uniswap});
      break;
    case 6:  // Cheese Bank — SBS with an extreme victim-funded pump.
      a = run_margin_sbs(u, 6, "Cheese Bank", "ETH-CHEESE",
                         {.token_sym = "CHEESE",
                          .quote_sym = "WETH2",
                          .app = "Cheese Bank",
                          .pool_app = "ApeSwap",
                          .pool_quote = 1'000,
                          .pool_x = 100'000,
                          .q1 = 2'000,
                          .stake = 1'600,
                          .lev = 10,
                          .flash = 4'000});
      break;
    case 7: {  // Value DeFi — SBS-like but volatility below 28%.
      a = run_margin_sbs(u, 7, "Value DeFi", "3Crv-mvUSD",
                         {.token_sym = "mvUSD",
                          .quote_sym = "3Crv",
                          .app = "Value DeFi",
                          .pool_app = "ValueSwap",
                          .pool_quote = 1'000,
                          .pool_x = 100'000,
                          .q1 = 200,
                          .stake = 5,
                          .lev = 10,
                          .flash = 300});
      a.true_patterns.clear();  // below-threshold: no clear pattern
      break;
    }
    case 8:  // Yearn — SBS, ~400% pump.
      a = run_margin_sbs(u, 8, "Yearn Finance", "DAI-3Crv",
                         {.token_sym = "y3Crv",
                          .quote_sym = "yDAI",
                          .app = "Yearn",
                          .pool_app = "CurveFork",
                          .pool_quote = 1'000,
                          .pool_x = 100'000,
                          .q1 = 1'000,
                          .stake = 250,
                          .lev = 10,
                          .flash = 2'500});
      break;
    case 9:  // Spartan — KRP on silent twin pools.
      a = run_twin_krp(u, 9, "Spartan Protocol", "SPARTA-WBNB",
                       {.token_sym = "SPARTA",
                        .quote_sym = "WBNB",
                        .app = "Spartan Protocol",
                        .explorer_visible = false,
                        .buys = 6,
                        .buy_quote = 200,
                        .pool1_quote = 1'000,
                        .pool1_x = 1'000'000,
                        .pool2_quote = 10'000,
                        .pool2_x = 1'000'000,
                        .flash = 3'000});
      break;
    case 10:
      a = attack_mint_exploit(u, 10, "XToken-1", "XToken", "WETH-xSNXa",
                              "xSNXa", 1);
      break;
    case 11:
      a = attack_mint_exploit(u, 11, "PancakeBunny", "PancakeBunny",
                              "WBNB-Bunny", "BUNNY", 2);
      break;
    case 12:
      a = attack_split_pool(u, 12, "JulSwap", "JulSwap", "WBNB-JULb", "JULb",
                            attack_pattern::sbs, 1);
      break;
    case 13:  // Belt Finance — vault MBS, small volatility, no events.
      a = run_vault_mbs(u, 13, "Belt Finance", "BUSD-beltBUSD",
                        {.underlying_sym = "BUSD",
                         .invested_sym = "bUSDT",
                         .share_sym = "beltBUSD",
                         .pool_app = "Belt Finance",
                         .app = "Belt Finance",
                         .vault_events = false,
                         .rounds = 3,
                         .chunks = 1,
                         .deposit_m = 20,
                         .pump_m = 10,
                         .pool_m = 20,
                         .vault_seed_m = 45,
                         .vault_invested_m = 35,
                         .amp = 150,
                         .flash_m = 35,
                         .provider = flash_provider::aave});
      break;
    case 14:  // xWin Finance — vault MBS with explorer-visible events.
      a = run_vault_mbs(u, 14, "xWin Finance", "BNB-XWIN",
                        {.underlying_sym = "xBNB",
                         .invested_sym = "XWIN",
                         .share_sym = "xwBNB",
                         .pool_app = "xWin Finance",
                         .app = "xWin Finance",
                         .vault_events = true,
                         .rounds = 3,
                         .chunks = 1,
                         .deposit_m = 15,
                         .pump_m = 12,
                         .pool_m = 18,
                         .vault_seed_m = 30,
                         .vault_invested_m = 25,
                         .amp = 8,
                         .flash_m = 30,
                         .provider = flash_provider::aave});
      break;
    case 15:  // Wault — KRP on silent twin pools.
      a = run_twin_krp(u, 15, "Wault Finance", "WUSD-BUSD",
                       {.token_sym = "WUSD",
                        .quote_sym = "WBNB",
                        .app = "Wault Finance",
                        .explorer_visible = false,
                        .buys = 7,
                        .buy_quote = 150,
                        .pool1_quote = 800,
                        .pool1_x = 900'000,
                        .pool2_quote = 9'000,
                        .pool2_x = 1'000'000,
                        .flash = 2'500});
      break;
    case 16:
      a = attack_mint_exploit(u, 16, "Twindex", "Twindex", "TWX-KUSD",
                              "TWX", 2);
      break;
    case 17:  // AutoShark-2 — SBS with exit routed through Kyber.
      a = run_margin_sbs(u, 17, "AutoShark-2", "BNB-USDC",
                         {.token_sym = "JAWS2",
                          .quote_sym = "WBNB",
                          .app = "AutoShark",
                          .pool_app = "PantherSwap",
                          .pool_quote = 1'000,
                          .pool_x = 100'000,
                          .q1 = 2'000,
                          .stake = 600,
                          .lev = 10,
                          .flash = 4'000,
                          .sell_via_aggregator = true});
      break;
    case 18:
      a = attack_mint_exploit(u, 18, "MY FARM PET", "MY FARM PET",
                              "BUSD-MyFarmPET", "MyFarmPET", 1);
      break;
    case 19:
      a = attack_split_pool(u, 19, "PancakeHunny", "PancakeHunny",
                            "HUNNY-WBNB", "HUNNY", attack_pattern::mbs, 3);
      break;
    case 20:  // AutoShark-3 — direct symmetric SBS, huge pump.
      a = run_margin_sbs(u, 20, "AutoShark-3", "WBNB-JAWS",
                         {.token_sym = "JAWS",
                          .quote_sym = "WBNB",
                          .app = "AutoShark",
                          .pool_app = "JetSwap",
                          .pool_quote = 1'000,
                          .pool_x = 100'000,
                          .q1 = 2'000,
                          .stake = 4'000,
                          .lev = 10,
                          .flash = 7'000});
      break;
    case 21:  // Ploutoz — direct symmetric SBS.
      a = run_margin_sbs(u, 21, "Ploutoz Finance", "BUSD-DOP",
                         {.token_sym = "DOP",
                          .quote_sym = "WBNB",
                          .app = "Ploutoz Finance",
                          .pool_app = "DopSwap",
                          .pool_quote = 1'000,
                          .pool_x = 100'000,
                          .q1 = 2'000,
                          .stake = 3'000,
                          .lev = 10,
                          .flash = 6'000});
      break;
    case 22:
      a = attack_saddle(u);
      break;
    default:
      throw std::out_of_range("unknown attack id");
  }
  fill_expectations(a);
  return a;
}

std::vector<known_attack> run_known_attacks(universe& u) {
  std::vector<known_attack> out;
  out.reserve(22);
  for (int id = 1; id <= 22; ++id) {
    out.push_back(run_known_attack(u, id));
  }
  return out;
}

}  // namespace leishen::scenarios
