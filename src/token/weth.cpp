#include "token/weth.h"

namespace leishen::token {

weth::weth(chain::blockchain& bc, address self)
    : erc20{bc, self, kWrappedEtherApp, "WETH", 18} {}

void weth::deposit(context& ctx, const u256& amount) {
  context::call_guard guard{ctx, addr(), "deposit"};
  ctx.transfer_eth(ctx.sender(), addr(), amount);
  add_supply(ctx, amount);
  move_balance(ctx, address::zero(), ctx.sender(), amount);
}

void weth::withdraw(context& ctx, const u256& amount) {
  context::call_guard guard{ctx, addr(), "withdraw"};
  sub_supply(ctx, amount);
  move_balance(ctx, ctx.sender(), address::zero(), amount);
  ctx.transfer_eth(addr(), ctx.sender(), amount);
}

}  // namespace leishen::token
