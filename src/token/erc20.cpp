#include "token/erc20.h"

#include <utility>

namespace leishen::token {

const u256 erc20::kSupplySlot = u256{2};

erc20::erc20(chain::blockchain& bc, address self, std::string app_name,
             std::string symbol, unsigned decimals)
    : contract{self, std::move(app_name), "ERC20"},
      symbol_{std::move(symbol)},
      decimals_{decimals} {
  (void)bc;
}

u256 erc20::balance_of(const chain::world_state& st,
                       const address& holder) const {
  return st.load(addr(), chain::map_slot(kBalancesSlot, holder));
}

u256 erc20::total_supply(const chain::world_state& st) const {
  return st.load(addr(), kSupplySlot);
}

u256 erc20::allowance(const chain::world_state& st, const address& owner,
                      const address& spender) const {
  return st.load(addr(), chain::map_slot2(kAllowancesSlot, owner, spender));
}

void erc20::transfer(context& ctx, const address& to, const u256& amount) {
  context::call_guard guard{ctx, addr(), "transfer"};
  move_balance(ctx, ctx.sender(), to, amount);
}

void erc20::transfer_from(context& ctx, const address& from,
                          const address& to, const u256& amount) {
  context::call_guard guard{ctx, addr(), "transferFrom"};
  if (ctx.sender() != from) {
    const u256 slot = chain::map_slot2(kAllowancesSlot, from, ctx.sender());
    const u256 allowed = ctx.load(addr(), slot);
    context::require(allowed >= amount, "ERC20: allowance exceeded");
    ctx.store(addr(), slot, allowed - amount);
  }
  move_balance(ctx, from, to, amount);
}

void erc20::approve(context& ctx, const address& spender, const u256& amount) {
  context::call_guard guard{ctx, addr(), "approve"};
  ctx.store(addr(), chain::map_slot2(kAllowancesSlot, ctx.sender(), spender),
            amount);
  ctx.emit_log(chain::event_log{.emitter = addr(),
                                .name = "Approval",
                                .addr0 = ctx.sender(),
                                .addr1 = spender,
                                .amount0 = amount});
}

void erc20::mint(context& ctx, const address& to, const u256& amount) {
  context::call_guard guard{ctx, addr(), "mint"};
  ctx.store(addr(), kSupplySlot, ctx.load(addr(), kSupplySlot) + amount);
  move_balance(ctx, address::zero(), to, amount);
}

void erc20::burn(context& ctx, const address& from, const u256& amount) {
  context::call_guard guard{ctx, addr(), "burn"};
  const u256 supply = ctx.load(addr(), kSupplySlot);
  context::require(supply >= amount, "ERC20: burn exceeds supply");
  ctx.store(addr(), kSupplySlot, supply - amount);
  move_balance(ctx, from, address::zero(), amount);
}

void erc20::add_supply(context& ctx, const u256& delta) {
  ctx.store(addr(), kSupplySlot, ctx.load(addr(), kSupplySlot) + delta);
}

void erc20::sub_supply(context& ctx, const u256& delta) {
  const u256 supply = ctx.load(addr(), kSupplySlot);
  context::require(supply >= delta, "ERC20: supply underflow");
  ctx.store(addr(), kSupplySlot, supply - delta);
}

void erc20::move_balance(context& ctx, const address& from, const address& to,
                         const u256& amount) {
  if (!from.is_zero()) {
    const u256 slot = chain::map_slot(kBalancesSlot, from);
    const u256 bal = ctx.load(addr(), slot);
    context::require(bal >= amount, "ERC20: balance exceeded");
    ctx.store(addr(), slot, bal - amount);
  }
  if (!to.is_zero()) {
    const u256 slot = chain::map_slot(kBalancesSlot, to);
    ctx.store(addr(), slot, ctx.load(addr(), slot) + amount);
  }
  ctx.emit_transfer(addr(), from, to, amount);
}

}  // namespace leishen::token
