// Wrapped Ether.
//
// Exchanges ETH and WETH 1:1. Its transfers are exactly the "WETH related
// transfers" that LeiShen's second simplification rule removes after
// unifying the two assets (paper §V-B2).
#pragma once

#include "token/erc20.h"

namespace leishen::token {

class weth : public erc20 {
 public:
  weth(chain::blockchain& bc, address self);

  /// Wrap: pull `amount` ETH from the sender, mint the same amount of WETH.
  void deposit(context& ctx, const u256& amount);

  /// Unwrap: burn `amount` WETH from the sender, push back the same ETH.
  void withdraw(context& ctx, const u256& amount);
};

/// The application tag the simplification rule matches on.
inline constexpr const char* kWrappedEtherApp = "Wrapped Ether";

}  // namespace leishen::token
