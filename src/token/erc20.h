// ERC20 fungible token (paper §II-A).
//
// Balances, allowances and total supply live in journaled world state;
// every balance movement emits the canonical Transfer event log, which the
// replayer lifts into account-level asset transfers. Mints come from and
// burns go to the BlackHole (zero) address, the signal the paper's mint/
// remove-liquidity trade conditions key on (Table III).
#pragma once

#include <string>

#include "chain/blockchain.h"
#include "chain/context.h"
#include "chain/contract.h"

namespace leishen::token {

using chain::context;

class erc20 : public chain::contract {
 public:
  erc20(chain::blockchain& bc, address self, std::string app_name,
        std::string symbol, unsigned decimals);

  [[nodiscard]] const std::string& symbol() const noexcept { return symbol_; }
  [[nodiscard]] unsigned decimals() const noexcept { return decimals_; }
  [[nodiscard]] chain::asset id() const noexcept {
    return chain::asset::token(addr());
  }
  /// One whole token in base units (10^decimals).
  [[nodiscard]] u256 one() const { return u256::pow10(decimals_); }

  // -- views ------------------------------------------------------------------
  [[nodiscard]] u256 balance_of(const chain::world_state& st,
                                const address& holder) const;
  [[nodiscard]] u256 total_supply(const chain::world_state& st) const;
  [[nodiscard]] u256 allowance(const chain::world_state& st,
                               const address& owner,
                               const address& spender) const;

  // -- mutations ----------------------------------------------------------------
  /// Transfer from ctx.sender() to `to`.
  void transfer(context& ctx, const address& to, const u256& amount);
  /// Transfer from `from` to `to`, consuming ctx.sender()'s allowance
  /// (unless sender == from).
  void transfer_from(context& ctx, const address& from, const address& to,
                     const u256& amount);
  void approve(context& ctx, const address& spender, const u256& amount);

  /// Unrestricted mint/burn: protocol contracts (pools, vaults) and scenario
  /// setup call these directly; real deployments would gate them.
  void mint(context& ctx, const address& to, const u256& amount);
  void burn(context& ctx, const address& from, const u256& amount);

 protected:
  /// Move balance and emit Transfer; `from`/`to` may be the zero address for
  /// mint/burn semantics.
  void move_balance(context& ctx, const address& from, const address& to,
                    const u256& amount);

  /// Adjust total supply by `delta` (positive: grow, negative: shrink) —
  /// used by subclasses that mint/burn without the public entry points.
  void add_supply(context& ctx, const u256& delta);
  void sub_supply(context& ctx, const u256& delta);

 private:
  static constexpr std::uint64_t kBalancesSlot = 0;
  static constexpr std::uint64_t kAllowancesSlot = 1;
  static const u256 kSupplySlot;

  std::string symbol_;
  unsigned decimals_;
};

}  // namespace leishen::token
