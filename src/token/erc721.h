// ERC721 non-fungible tokens.
//
// The paper's related work (§VIII) notes that "flash loans have also been
// used to borrow NFTs temporarily, whose implementation is similar to that
// for ERC20 tokens". This minimal ERC721 plus the NFT flash pool in
// defi/nft_flashloan.h covers that extension: an NFT borrowed and returned
// within one atomic transaction (e.g. to claim an airdrop or pass a
// token-gated check).
#pragma once

#include <string>

#include "chain/blockchain.h"
#include "chain/context.h"
#include "chain/contract.h"

namespace leishen::token {

class erc721 : public chain::contract {
 public:
  erc721(chain::blockchain& bc, address self, std::string app_name,
         std::string symbol);

  [[nodiscard]] const std::string& symbol() const noexcept { return symbol_; }

  /// Owner of `token_id` (zero address when unminted/burned).
  [[nodiscard]] address owner_of(const chain::world_state& st,
                                 const u256& token_id) const;
  [[nodiscard]] u256 balance_of(const chain::world_state& st,
                                const address& holder) const;

  /// Mint `token_id` to `to`; emits Transfer(0 -> to, id).
  void mint(chain::context& ctx, const address& to, const u256& token_id);

  /// Transfer `token_id` from the caller to `to`.
  void transfer(chain::context& ctx, const address& to, const u256& token_id);

  /// Transfer on behalf of the owner, requiring a per-token approval.
  void transfer_from(chain::context& ctx, const address& from,
                     const address& to, const u256& token_id);

  /// Approve `spender` to move `token_id` once.
  void approve(chain::context& ctx, const address& spender,
               const u256& token_id);

 private:
  void move_token(chain::context& ctx, const address& from, const address& to,
                  const u256& token_id);
  [[nodiscard]] static u256 owner_slot(const u256& token_id);
  [[nodiscard]] static u256 approval_slot(const u256& token_id);

  std::string symbol_;
};

}  // namespace leishen::token
