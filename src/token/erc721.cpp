#include "token/erc721.h"

#include <utility>

namespace leishen::token {

namespace {
constexpr std::uint64_t kOwnersBase = 0x721'0000;
constexpr std::uint64_t kApprovalsBase = 0x721'0001;
constexpr std::uint64_t kBalancesSlot = 0x721'0002;
}  // namespace

erc721::erc721(chain::blockchain& bc, address self, std::string app_name,
               std::string symbol)
    : contract{self, std::move(app_name), "ERC721"},
      symbol_{std::move(symbol)} {
  (void)bc;
}

u256 erc721::owner_slot(const u256& token_id) {
  return (u256{kOwnersBase} << 200) | token_id;
}

u256 erc721::approval_slot(const u256& token_id) {
  return (u256{kApprovalsBase} << 200) | (token_id << 1);
}

address erc721::owner_of(const chain::world_state& st,
                         const u256& token_id) const {
  return chain::unpack_address(st.load(addr(), owner_slot(token_id)));
}

u256 erc721::balance_of(const chain::world_state& st,
                        const address& holder) const {
  return st.load(addr(), chain::map_slot(kBalancesSlot, holder));
}

void erc721::mint(chain::context& ctx, const address& to,
                  const u256& token_id) {
  chain::context::call_guard guard{ctx, addr(), "mint"};
  chain::context::require(owner_of(ctx.state(), token_id).is_zero(),
                          "ERC721: token exists");
  move_token(ctx, address::zero(), to, token_id);
}

void erc721::transfer(chain::context& ctx, const address& to,
                      const u256& token_id) {
  chain::context::call_guard guard{ctx, addr(), "transfer"};
  chain::context::require(owner_of(ctx.state(), token_id) == ctx.sender(),
                          "ERC721: not the owner");
  move_token(ctx, ctx.sender(), to, token_id);
}

void erc721::transfer_from(chain::context& ctx, const address& from,
                           const address& to, const u256& token_id) {
  chain::context::call_guard guard{ctx, addr(), "transferFrom"};
  chain::context::require(owner_of(ctx.state(), token_id) == from,
                          "ERC721: wrong owner");
  if (ctx.sender() != from) {
    const address approved = chain::unpack_address(
        ctx.load(addr(), approval_slot(token_id)));
    chain::context::require(approved == ctx.sender(),
                            "ERC721: not approved");
  }
  ctx.store(addr(), approval_slot(token_id), u256{});
  move_token(ctx, from, to, token_id);
}

void erc721::approve(chain::context& ctx, const address& spender,
                     const u256& token_id) {
  chain::context::call_guard guard{ctx, addr(), "approve"};
  chain::context::require(owner_of(ctx.state(), token_id) == ctx.sender(),
                          "ERC721: not the owner");
  ctx.store(addr(), approval_slot(token_id), chain::pack_address(spender));
}

void erc721::move_token(chain::context& ctx, const address& from,
                        const address& to, const u256& token_id) {
  ctx.store(addr(), owner_slot(token_id), chain::pack_address(to));
  if (!from.is_zero()) {
    const u256 slot = chain::map_slot(kBalancesSlot, from);
    ctx.store(addr(), slot, ctx.load(addr(), slot) - u256{1});
  }
  if (!to.is_zero()) {
    const u256 slot = chain::map_slot(kBalancesSlot, to);
    ctx.store(addr(), slot, ctx.load(addr(), slot) + u256{1});
  }
  // NFT transfers are Transfer(from, to, tokenId); flagged by amount1 so the
  // ERC20 replay path (amount0 = value) does not mistake ids for amounts.
  ctx.emit_log(chain::event_log{.emitter = addr(),
                                .name = "TransferNFT",
                                .addr0 = from,
                                .addr1 = to,
                                .amount0 = token_id});
}

}  // namespace leishen::token
