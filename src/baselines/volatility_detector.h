// Price-volatility baseline (Xue et al. [23], paper §I and §VIII).
//
// Monitors the price movement a transaction causes and flags it when the
// volatility of any traded pair exceeds a fixed threshold (99% in the
// original work). The paper's critique: flpAttacks with slight price
// movements (e.g. Harvest's 0.5%) slip under any such threshold, while
// ordinary large trades can trip it — no pattern reasoning at all.
#pragma once

#include "core/detector.h"

namespace leishen::baselines {

struct volatility_result {
  bool is_flash_loan = false;
  bool detected = false;
  double max_volatility_pct = 0.0;
};

/// Flags flash loan transactions whose maximum per-pair volatility exceeds
/// `threshold_pct`. Uses LeiShen's transfer/trade lifting only to observe
/// rates (the original queried prices on two platforms directly).
[[nodiscard]] volatility_result run_volatility_detector(
    const core::detection_report& report, double threshold_pct = 99.0);

}  // namespace leishen::baselines
