#include "baselines/volatility_detector.h"

namespace leishen::baselines {

volatility_result run_volatility_detector(
    const core::detection_report& report, double threshold_pct) {
  volatility_result out;
  out.is_flash_loan = report.is_flash_loan;
  if (!report.is_flash_loan) return out;
  for (const core::pair_volatility& v : report.volatilities()) {
    if (v.percent > out.max_volatility_pct) {
      out.max_volatility_pct = v.percent;
    }
  }
  out.detected = out.max_volatility_pct >= threshold_pct;
  return out;
}

}  // namespace leishen::baselines
