// DeFiRanger-style baseline detector (Wu et al. [22], as characterized in
// paper §I and §VI-B).
//
// Differences from LeiShen, per the paper:
//   - operates on *account-level* asset transfers: no application tagging,
//     no intermediary merging — so trades routed through aggregators or
//     split across a protocol's accounts are never identified;
//   - its price-manipulation pattern covers two trades only (a symmetric
//     buy/sell pair at a better exit price), so batch buying (KRP) and the
//     28%-volatility refinement are absent.
// WETH/ETH unification is kept (DeFiRanger lifts that semantic too).
#pragma once

#include "chain/receipt.h"
#include "core/app_transfer.h"

namespace leishen::baselines {

struct defiranger_result {
  bool is_flash_loan = false;
  bool detected = false;
  core::trade_list trades;  // account-level trades it identified
};

/// Run the baseline on a receipt. `weth_token` enables the WETH=ETH lift.
[[nodiscard]] defiranger_result run_defiranger(
    const chain::tx_receipt& receipt, const chain::asset& weth_token);

}  // namespace leishen::baselines
