#include "baselines/explorer_detector.h"

#include "core/flashloan_id.h"
#include "defi/lending.h"
#include "defi/stableswap.h"
#include "defi/uniswap_v2.h"
#include "defi/vault.h"

namespace leishen::baselines {
namespace {

using chain::event_log;
using core::trade;
using core::trade_kind;

void lift_uniswap_swap(const event_log& log, const chain::blockchain& bc,
                       const core::account_tagger& tagger,
                       core::trade_list& out) {
  const auto* pair = bc.find_as<defi::uniswap_v2_pair>(log.emitter);
  if (pair == nullptr) return;
  // Swap(sender, amount0In, amount1In, amount0Out, amount1Out, to)
  const u256& in0 = log.amount0;
  const u256& in1 = log.amount1;
  const u256& out0 = log.amount2;
  const u256& out1 = log.amount3;
  const bool in_is_0 = !in0.is_zero();
  out.push_back(trade{
      .buyer = tagger.tag_of(log.addr1),
      .seller = tagger.tag_of(log.emitter),
      .amount_sell = in_is_0 ? in0 : in1,
      .token_sell = (in_is_0 ? pair->token0() : pair->token1()).id(),
      .amount_buy = in_is_0 ? out1 : out0,
      .token_buy = (in_is_0 ? pair->token1() : pair->token0()).id(),
      .kind = trade_kind::swap});
}

void lift_token_exchange(const event_log& log, const chain::blockchain& bc,
                         const core::account_tagger& tagger,
                         core::trade_list& out) {
  const auto* pool = bc.find_as<defi::stableswap_pool>(log.emitter);
  if (pool == nullptr) return;
  // TokenExchange(buyer, to, tokens_sold, tokens_bought, sold_id, bought_id)
  const std::size_t i = log.amount2.to_u64();
  const std::size_t j = log.amount3.to_u64();
  if (i > 1 || j > 1) return;
  out.push_back(trade{.buyer = tagger.tag_of(log.addr0),
                      .seller = tagger.tag_of(log.emitter),
                      .amount_sell = log.amount0,
                      .token_sell = pool->coin(i).id(),
                      .amount_buy = log.amount1,
                      .token_buy = pool->coin(j).id(),
                      .kind = trade_kind::swap});
}

void lift_log_swap(const event_log& log, const core::account_tagger& tagger,
                   core::trade_list& out) {
  // LOG_SWAP(caller, tokenIn, tokenOut, amountIn, amountOut)
  out.push_back(trade{.buyer = tagger.tag_of(log.addr0),
                      .seller = tagger.tag_of(log.emitter),
                      .amount_sell = log.amount0,
                      .token_sell = chain::asset::token(log.addr1),
                      .amount_buy = log.amount1,
                      .token_buy = chain::asset::token(log.addr2),
                      .kind = trade_kind::swap});
}

void lift_trade_executed(const event_log& log,
                         const core::account_tagger& tagger,
                         core::trade_list& out) {
  // TradeExecuted(user, tokenIn, tokenOut, amountIn, amountOut)
  out.push_back(trade{.buyer = tagger.tag_of(log.addr0),
                      .seller = tagger.tag_of(log.emitter),
                      .amount_sell = log.amount0,
                      .token_sell = chain::asset::token(log.addr1),
                      .amount_buy = log.amount1,
                      .token_buy = chain::asset::token(log.addr2),
                      .kind = trade_kind::swap});
}

void lift_vault_event(const event_log& log, const chain::blockchain& bc,
                      const core::account_tagger& tagger, bool is_deposit,
                      core::trade_list& out) {
  const auto* v = bc.find_as<defi::vault>(log.emitter);
  if (v == nullptr) return;
  // Deposit(user, amountUnderlying, shares) / Withdraw(user, amount, shares)
  if (is_deposit) {
    out.push_back(trade{.buyer = tagger.tag_of(log.addr0),
                        .seller = tagger.tag_of(log.emitter),
                        .amount_sell = log.amount0,
                        .token_sell = v->underlying().id(),
                        .amount_buy = log.amount1,
                        .token_buy = v->id(),
                        .kind = trade_kind::mint_liquidity});
  } else {
    out.push_back(trade{.buyer = tagger.tag_of(log.addr0),
                        .seller = tagger.tag_of(log.emitter),
                        .amount_sell = log.amount1,
                        .token_sell = v->id(),
                        .amount_buy = log.amount0,
                        .token_buy = v->underlying().id(),
                        .kind = trade_kind::remove_liquidity});
  }
}

void lift_borrow(const event_log& log, const core::account_tagger& tagger,
                 core::trade_list& out) {
  // Borrow(borrower, collateralToken, debtToken, collateralAmt, debtAmt)
  out.push_back(trade{.buyer = tagger.tag_of(log.addr0),
                      .seller = tagger.tag_of(log.emitter),
                      .amount_sell = log.amount0,
                      .token_sell = chain::asset::token(log.addr1),
                      .amount_buy = log.amount1,
                      .token_buy = chain::asset::token(log.addr2),
                      .kind = trade_kind::swap});
}

}  // namespace

core::trade_list extract_event_trades(const chain::tx_receipt& receipt,
                                      const chain::blockchain& bc,
                                      const core::account_tagger& tagger) {
  core::trade_list out;
  for (const chain::trace_event& ev : receipt.events) {
    const auto* log = std::get_if<event_log>(&ev);
    if (log == nullptr) continue;
    if (log->name == "Swap") {
      lift_uniswap_swap(*log, bc, tagger, out);
    } else if (log->name == "TokenExchange") {
      lift_token_exchange(*log, bc, tagger, out);
    } else if (log->name == "LOG_SWAP") {
      lift_log_swap(*log, tagger, out);
    } else if (log->name == "TradeExecuted") {
      lift_trade_executed(*log, tagger, out);
    } else if (log->name == "Deposit") {
      lift_vault_event(*log, bc, tagger, true, out);
    } else if (log->name == "Withdraw") {
      lift_vault_event(*log, bc, tagger, false, out);
    } else if (log->name == "Borrow") {
      lift_borrow(*log, tagger, out);
    }
  }
  return out;
}

explorer_result run_explorer_leishen(const chain::tx_receipt& receipt,
                                     const chain::blockchain& bc,
                                     const core::account_tagger& tagger,
                                     const core::pattern_params& params) {
  explorer_result out;
  const core::flashloan_info fl = core::identify_flash_loan(receipt);
  out.is_flash_loan = fl.is_flash_loan;
  if (!fl.is_flash_loan) return out;
  out.trades = extract_event_trades(receipt, bc, tagger);
  out.matches = core::match_patterns(out.trades,
                                     tagger.tag_of(fl.borrower), params);
  out.detected = !out.matches.empty();
  return out;
}

}  // namespace leishen::baselines
