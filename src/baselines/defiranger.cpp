#include "baselines/defiranger.h"

#include "core/flashloan_id.h"
#include "core/trade_actions.h"
#include "replay/replayer.h"

namespace leishen::baselines {
namespace {

/// Account-level "tags": every account is its own party (hex string);
/// the zero address still reads as the BlackHole so mint/burn trades parse.
core::app_transfer_list to_account_level(const chain::transfer_list& transfers,
                                         const chain::asset& weth_token) {
  core::app_transfer_list out;
  out.reserve(transfers.size());
  for (const chain::transfer& t : transfers) {
    core::app_transfer at{
        .from_tag = t.sender.is_zero() ? std::string{core::kBlackHoleTag}
                                       : t.sender.to_hex(),
        .to_tag = t.receiver.is_zero() ? std::string{core::kBlackHoleTag}
                                       : t.receiver.to_hex(),
        .amount = t.amount,
        .token = t.token};
    if (!weth_token.is_ether() && at.token == weth_token) {
      at.token = chain::asset::ether();
    }
    out.push_back(at);
  }
  return out;
}

}  // namespace

defiranger_result run_defiranger(const chain::tx_receipt& receipt,
                                 const chain::asset& weth_token) {
  defiranger_result out;
  const core::flashloan_info fl = core::identify_flash_loan(receipt);
  out.is_flash_loan = fl.is_flash_loan;
  if (!fl.is_flash_loan) return out;

  const chain::transfer_list transfers = replay::extract_transfers(receipt);
  const core::app_transfer_list lifted =
      to_account_level(transfers, weth_token);
  out.trades = core::identify_trades(lifted);

  // Two-trade price manipulation pattern: the borrower buys some token X
  // from an account and later sells the *same amount* of X back to the
  // same account at a better price.
  const std::string borrower = fl.borrower.to_hex();
  for (std::size_t i = 0; i < out.trades.size(); ++i) {
    const core::trade& buy = out.trades[i];
    if (buy.buyer != borrower) continue;
    for (std::size_t j = i + 1; j < out.trades.size(); ++j) {
      const core::trade& sell = out.trades[j];
      if (sell.buyer != borrower) continue;
      if (sell.seller != buy.seller) continue;          // same counterparty
      if (sell.token_sell != buy.token_buy) continue;   // same target token
      if (sell.token_buy != buy.token_sell) continue;   // same quote token
      if (sell.amount_sell != buy.amount_buy) continue; // symmetric amount
      // Profitable: quote received per X on exit exceeds quote paid per X
      // on entry.
      const rate entry{buy.amount_sell, buy.amount_buy};
      const rate exit{sell.amount_buy, sell.amount_sell};
      if (entry < exit) {
        out.detected = true;
        return out;
      }
    }
  }
  return out;
}

}  // namespace leishen::baselines
