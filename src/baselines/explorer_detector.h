// Explorer+LeiShen baseline (paper §VI-B, Table IV column 4).
//
// Etherscan/BscScan expose "transaction actions" decoded from well-known
// event signatures. This baseline rebuilds the trade list purely from such
// events (Uniswap Swap, Balancer LOG_SWAP, Curve TokenExchange, aggregator
// TradeExecuted, vault Deposit/Withdraw, bZx Borrow) and then applies
// LeiShen's pattern matching. Protocols that do not implement trade events
// are invisible to it — the paper's explanation for its low recall.
#pragma once

#include "chain/blockchain.h"
#include "core/account_tagging.h"
#include "core/patterns.h"

namespace leishen::baselines {

struct explorer_result {
  bool is_flash_loan = false;
  bool detected = false;
  core::trade_list trades;
  std::vector<core::pattern_match> matches;
};

/// Extract event-decoded trades. Needs the chain to resolve emitting
/// contracts' token metadata (as Etherscan's decoders do) and a tagger for
/// counterparty naming.
[[nodiscard]] core::trade_list extract_event_trades(
    const chain::tx_receipt& receipt, const chain::blockchain& bc,
    const core::account_tagger& tagger);

/// Full baseline: event trades + LeiShen pattern matching.
[[nodiscard]] explorer_result run_explorer_leishen(
    const chain::tx_receipt& receipt, const chain::blockchain& bc,
    const core::account_tagger& tagger,
    const core::pattern_params& params = {});

}  // namespace leishen::baselines
