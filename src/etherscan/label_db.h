// Etherscan-style account label database (paper §V-B1).
//
// Mainnet LeiShen seeds its tagging from ~52,500 Etherscan labels covering
// 119 DeFi applications — but most pool/periphery accounts carry no label.
// This database plays that role: scenarios register labels for a *subset*
// of the simulator's ground-truth apps (typically only deployers/factories),
// and LeiShen's creation-tree tagging must recover the rest.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/blockchain.h"

namespace leishen::etherscan {

class label_db {
 public:
  void tag(const address& a, std::string app);
  void remove(const address& a);
  [[nodiscard]] std::optional<std::string> label_of(
      const address& a) const;
  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }

  /// Seed from the chain's ground truth with partial coverage: label every
  /// account whose app is known and which is a creation-tree *root or
  /// first-generation* contract (deployers, factories, routers), leaving
  /// deeper descendants (pools, pairs, vault instances) unlabeled — the
  /// realistic Etherscan coverage shape. `exclude_apps` suppresses labels
  /// entirely (used to model unknown/attacker accounts, and the paper's
  /// removal of post-hoc attacker tags).
  void seed_from_chain(const chain::blockchain& bc,
                       const std::vector<std::string>& exclude_apps = {});

 private:
  std::unordered_map<address, std::string, address_hash>
      labels_;
};

}  // namespace leishen::etherscan
