#include "etherscan/label_db.h"

#include <algorithm>
#include <utility>

namespace leishen::etherscan {

void label_db::tag(const address& a, std::string app) {
  labels_[a] = std::move(app);
}

void label_db::remove(const address& a) { labels_.erase(a); }

std::optional<std::string> label_db::label_of(const address& a) const {
  const auto it = labels_.find(a);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

void label_db::seed_from_chain(const chain::blockchain& bc,
                               const std::vector<std::string>& exclude_apps) {
  const auto excluded = [&](const std::string& app) {
    return app.empty() ||
           std::find(exclude_apps.begin(), exclude_apps.end(), app) !=
               exclude_apps.end();
  };
  const chain::creation_registry& reg = bc.creations();
  for (const chain::contract* c : bc.contracts()) {
    const std::string& app = c->app_name();
    if (excluded(app)) continue;
    // Label only creation-tree roots' direct children (factories, routers,
    // top-level protocol contracts). Deeper descendants stay unlabeled.
    const auto creator = reg.creator_of(c->addr());
    if (creator.has_value() && reg.creator_of(*creator).has_value()) {
      continue;  // grandchild or deeper
    }
    labels_[c->addr()] = app;
    // Root EOAs with a known app get their deployer label too.
    if (creator.has_value()) {
      const std::string root_app = bc.app_of(*creator);
      if (!excluded(root_app)) labels_[*creator] = root_app;
    }
  }
}

}  // namespace leishen::etherscan
