// HTTP/1.1 message plumbing for the embedded API server: request-head
// parsing with hard limits, URL decoding, and response rendering.
//
// Scope is exactly what the incident API needs: GET requests with a query
// string and headers, keep-alive by HTTP/1.1 default, Content-Length
// framing on every response. Bodies on requests are not supported (the API
// is read-only); anything outside the envelope is rejected with a precise
// status — 400 for malformed syntax, 431 when the head exceeds the byte
// budget — rather than being guessed at.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace leishen::api {

struct http_request {
  std::string method;
  std::string path;     // decoded, query stripped
  std::string version;  // "HTTP/1.1"
  /// Decoded key/value pairs in order of appearance.
  std::vector<std::pair<std::string, std::string>> query;
  /// Names lowercased; values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;

  /// First value for the (decoded) query key; nullptr when absent.
  [[nodiscard]] const std::string* query_param(std::string_view name) const;
  /// First value for the (lowercase) header name; nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  /// HTTP/1.1 keep-alive semantics: persistent unless "Connection: close".
  [[nodiscard]] bool keep_alive() const;
};

struct parse_limits {
  /// Request head (request line + headers + blank line) byte budget; a head
  /// that exceeds it is rejected with 431 before parsing.
  std::size_t max_head_bytes = 8192;
  std::size_t max_headers = 64;
};

enum class parse_result { ok, malformed, too_large };

/// Parse a request head (everything before the blank line, CRLF-separated).
parse_result parse_request_head(std::string_view head,
                                const parse_limits& limits, http_request& out);

/// Percent- and plus-decoding; `ok` is cleared on a truncated/invalid %XX.
std::string url_decode(std::string_view s, bool& ok);

struct http_response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  // extra
};

[[nodiscard]] const char* status_text(int status) noexcept;

/// Serialize with Content-Length framing and an explicit Connection header.
/// `head` renders a HEAD reply: the full header block — including the
/// Content-Length the matching GET body would have — with the body bytes
/// suppressed, as RFC 7231 §4.3.2 requires.
std::string render_response(const http_response& r, bool keep_alive,
                            bool head = false);

/// A JSON error body: {"error":"<escaped message>"}.
http_response error_response(int status, std::string_view message);

}  // namespace leishen::api
