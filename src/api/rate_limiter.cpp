#include "api/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace leishen::api {

bool rate_limiter::allow(const std::string& key, clock::time_point now) {
  if (!cfg_.enabled || cfg_.refill_per_sec <= 0) return true;
  const std::lock_guard lk{mu_};
  prune_locked(now);
  auto [it, inserted] = buckets_.try_emplace(key);
  bucket& b = it->second;
  if (inserted) {
    b.tokens = cfg_.burst;
    b.refilled_at = now;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - b.refilled_at).count();
    if (elapsed > 0) {
      b.tokens = std::min(cfg_.burst, b.tokens + elapsed * cfg_.refill_per_sec);
      b.refilled_at = now;
    }
  }
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

unsigned rate_limiter::retry_after_sec() const {
  if (cfg_.refill_per_sec <= 0) return 1;
  return static_cast<unsigned>(
      std::max(1.0, std::ceil(1.0 / cfg_.refill_per_sec)));
}

std::size_t rate_limiter::tracked_clients() const {
  const std::lock_guard lk{mu_};
  return buckets_.size();
}

void rate_limiter::prune_locked(clock::time_point now) {
  // Amortized: sweep at most once per full-refill interval. A bucket idle
  // that long is back at full burst, indistinguishable from a fresh one.
  const double full_refill_sec =
      cfg_.refill_per_sec > 0 ? cfg_.burst / cfg_.refill_per_sec : 60.0;
  const auto interval = std::chrono::duration<double>(full_refill_sec);
  if (now - last_prune_ < interval) return;
  last_prune_ = now;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (now - it->second.refilled_at >= interval) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace leishen::api
