// The embedded HTTP/1.1 JSON API over an incident_store.
//
// Read-only serving tier: one accept thread feeds a bounded connection
// queue drained by a small worker pool (common::thread_pool). Endpoints:
//
//   GET /incidents        filtered, keyset-paginated incident list
//                         (attacker, token, app, pattern, from, to,
//                          limit, page=<block>-<tx>-<id>)
//   GET /incidents/{id}   one incident by store id
//   GET /stats            store_stats as JSON
//   GET /metrics          metrics_registry JSON export
//   GET /healthz          liveness: per-shard state, WAL lag, queue depths
//   GET /readyz           readiness: 200 while serving, 503 + Retry-After
//                         when the fleet can no longer make progress
//
// Incident payloads embed `jsonl_sink::to_json_line` verbatim as the
// "incident" field, so an object fetched over HTTP is byte-identical to
// its line in the durable JSONL feed — one encoder, one wire format.
//
// Cross-cutting behavior: per-client token-bucket rate limiting (keyed on
// the peer address; an x-api-key header becomes the identity only when it
// matches a key in `server_config::api_keys`, so unvalidated clients
// cannot mint fresh buckets by rotating header values) answering 429 with
// Retry-After; a response cache keyed on (canonical request, store
// version) with strong ETags, so an unchanged store turns If-None-Match
// revalidations into 304s without re-running the query; 431 for oversized
// request heads and 400 for malformed ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "api/http.h"
#include "api/rate_limiter.h"
#include "common/block_queue.h"
#include "common/net.h"
#include "common/thread_pool.h"
#include "service/metrics.h"
#include "store/incident_store.h"

namespace leishen::api {

struct server_config {
  net::endpoint endpoint{};  // port 0 binds an ephemeral port
  unsigned workers = 2;
  /// Accepted-but-unserved connections beyond this are refused with 503.
  std::size_t pending_connections = 64;
  parse_limits limits{};
  rate_limit_config rate{};
  /// Recognized rate-limit identities: an x-api-key matching one of these
  /// owns its own token bucket (shared across addresses); any other value
  /// is ignored and the client is keyed by peer address. Empty (the
  /// default) means every client is keyed by peer address.
  std::unordered_set<std::string> api_keys;
  std::size_t default_page_limit = 50;
  std::size_t max_page_limit = 500;
  std::size_t cache_entries = 256;
  /// Keep-alive connections idle longer than this are closed.
  int idle_timeout_ms = 5000;
  /// Override the /metrics body (the fleet serves a merged view); empty =
  /// the registry passed to the constructor.
  std::function<std::string()> metrics_json;
  /// /healthz body — per-shard liveness, WAL lag, queue depths (the fleet
  /// wires its health_json here); empty = a minimal always-ok payload.
  /// Health probes bypass the rate limiter and the response cache: an
  /// orchestrator must never see a 429 instead of its liveness answer.
  std::function<std::string()> health_json;
  /// /readyz predicate; false answers 503 with Retry-After so load
  /// balancers drain the instance. Empty = always ready.
  std::function<bool()> ready;
};

/// {"id":N,"incident":<jsonl_sink::to_json_line(...)>} — the inner object
/// is the feed line, byte for byte.
std::string render_incident(const store::stored_incident& s);

/// One /incidents page: total/version/count/has_more/next plus items.
std::string render_page(const store::incident_page& page);

std::string render_stats(const store::store_stats& s);

/// "<block>-<tx>-<id>" — the page cursor wire format.
std::string render_cursor(const store::incident_key& key);
std::optional<store::incident_key> parse_cursor(std::string_view s);

/// RFC 7231 IMF-fixdate ("Sun, 06 Nov 1994 08:49:37 GMT").
std::string http_date(std::chrono::system_clock::time_point tp);

class http_server {
 public:
  /// The server only reads the store; it must outlive the server. The
  /// registry receives the api_* instruments and backs /metrics (unless
  /// `cfg.metrics_json` overrides the body).
  http_server(const store::incident_store& store,
              service::metrics_registry& metrics, server_config cfg);
  ~http_server();

  http_server(const http_server&) = delete;
  http_server& operator=(const http_server&) = delete;

  /// Bind, listen, spawn accept + workers. Throws std::runtime_error when
  /// the endpoint is unavailable.
  void start();

  /// Stop accepting, drain in-flight requests, join everything.
  /// Idempotent; also runs from the destructor.
  void stop();

  /// The bound port (meaningful after start(); resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Route one parsed request — the socket loop's brain, exposed so tests
  /// can drive routing and caching without a real connection. `client_key`
  /// is the rate-limit identity (peer address when driven by a socket).
  http_response handle(const http_request& req, const std::string& client_key);

 private:
  struct conn {
    int fd = -1;
    std::string peer;
  };

  struct cache_entry {
    std::uint64_t version = 0;
    http_response response;
  };

  void accept_loop();
  void worker_loop();
  /// Owns the fd: catch-all exception boundary around serve_requests, then
  /// close. A throw escaping a worker would terminate the process.
  void serve_connection(conn c);
  /// The keep-alive request/response loop for one connection.
  void serve_requests(const conn& c);

  /// Rate-limit identity for a parsed request: "key:<x-api-key>" when the
  /// header matches a configured key, else the peer address.
  [[nodiscard]] std::string client_identity(const http_request& req,
                                            const std::string& peer) const;

  http_response route(const http_request& req);
  http_response incidents_list(const http_request& req);
  http_response incident_detail(std::string_view id_text);
  /// nullopt = not a cacheable route (/metrics is always live).
  std::optional<http_response> cache_lookup(const std::string& cache_key,
                                            std::uint64_t version);
  void cache_store(const std::string& cache_key, std::uint64_t version,
                   const http_response& r);

  const store::incident_store& store_;
  service::metrics_registry& metrics_;
  server_config cfg_;

  rate_limiter limiter_;
  std::unique_ptr<net::listen_socket> listener_;
  std::unique_ptr<thread_pool> pool_;
  std::unique_ptr<block_queue<conn>> conns_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex cache_mu_;
  std::unordered_map<std::string, cache_entry> cache_;

  service::counter* requests_ = nullptr;
  service::counter* rate_limited_ = nullptr;
  service::counter* cache_hits_ = nullptr;
  service::counter* cache_misses_ = nullptr;
  service::counter* bad_requests_ = nullptr;
  service::counter* internal_errors_ = nullptr;
  service::counter* connections_ = nullptr;
  service::counter* refused_ = nullptr;
  service::histogram* request_seconds_ = nullptr;
};

}  // namespace leishen::api
