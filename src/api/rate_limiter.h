// Per-client token-bucket rate limiting for the API tier.
//
// Each client key (API key header, else peer address) owns a bucket that
// refills at `refill_per_sec` and holds at most `burst` tokens; a request
// spends one token or is rejected. Buckets are created lazily and pruned
// once they have been idle long enough to be full again, so an address scan
// cannot grow the table without bound.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace leishen::api {

struct rate_limit_config {
  double refill_per_sec = 50.0;
  double burst = 100.0;
  /// 0 disables limiting entirely (every allow() passes).
  bool enabled = true;
};

class rate_limiter {
 public:
  using clock = std::chrono::steady_clock;

  explicit rate_limiter(rate_limit_config cfg) : cfg_{cfg} {}

  /// Spend one token for `key` at the wall time "now".
  bool allow(const std::string& key) { return allow(key, clock::now()); }

  /// Deterministic variant for tests: the caller supplies the clock.
  bool allow(const std::string& key, clock::time_point now);

  /// Whole seconds until `key` next has a token (the Retry-After value).
  [[nodiscard]] unsigned retry_after_sec() const;

  [[nodiscard]] std::size_t tracked_clients() const;

 private:
  struct bucket {
    double tokens = 0;
    clock::time_point refilled_at{};
  };

  void prune_locked(clock::time_point now);

  rate_limit_config cfg_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, bucket> buckets_;
  clock::time_point last_prune_{};
};

}  // namespace leishen::api
