#include "api/http.h"

#include <algorithm>
#include <cctype>

#include "common/json.h"

namespace leishen::api {

namespace {

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Split "a=1&b=2" into decoded pairs; false on a bad %-escape.
bool parse_query(std::string_view qs,
                 std::vector<std::pair<std::string, std::string>>& out) {
  while (!qs.empty()) {
    const std::size_t amp = qs.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? qs : qs.substr(0, amp);
    qs = amp == std::string_view::npos ? std::string_view{}
                                       : qs.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    bool ok = true;
    std::string key = url_decode(
        eq == std::string_view::npos ? pair : pair.substr(0, eq), ok);
    if (!ok) return false;
    std::string value;
    if (eq != std::string_view::npos) {
      value = url_decode(pair.substr(eq + 1), ok);
      if (!ok) return false;
    }
    out.emplace_back(std::move(key), std::move(value));
  }
  return true;
}

}  // namespace

const std::string* http_request::query_param(std::string_view name) const {
  for (const auto& [k, v] : query) {
    if (k == name) return &v;
  }
  return nullptr;
}

const std::string* http_request::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

bool http_request::keep_alive() const {
  const std::string* conn = header("connection");
  if (conn == nullptr) return version == "HTTP/1.1";
  const std::string lowered = to_lower(*conn);
  if (lowered == "close") return false;
  if (lowered == "keep-alive") return true;
  return version == "HTTP/1.1";
}

std::string url_decode(std::string_view s, bool& ok) {
  ok = true;
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= s.size()) {
        ok = false;
        return out;
      }
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi < 0 || lo < 0) {
        ok = false;
        return out;
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

parse_result parse_request_head(std::string_view head,
                                const parse_limits& limits,
                                http_request& out) {
  if (head.size() > limits.max_head_bytes) return parse_result::too_large;
  out = http_request{};

  // Request line: METHOD SP target SP version
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  const std::string_view request_line = head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return parse_result::malformed;
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return parse_result::malformed;
  }
  out.method = std::string{request_line.substr(0, sp1)};
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = std::string{request_line.substr(sp2 + 1)};
  if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0") {
    return parse_result::malformed;
  }
  if (target.empty() || target.front() != '/') return parse_result::malformed;

  const std::size_t qmark = target.find('?');
  bool ok = true;
  out.path = url_decode(
      qmark == std::string_view::npos ? target : target.substr(0, qmark), ok);
  if (!ok) return parse_result::malformed;
  if (qmark != std::string_view::npos &&
      !parse_query(target.substr(qmark + 1), out.query)) {
    return parse_result::malformed;
  }

  // Header lines until the blank line (or end of head).
  std::size_t pos = line_end == head.size() ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol == head.size() ? head.size() : eol + 2;
    if (line.empty()) break;  // end of head
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return parse_result::malformed;
    }
    if (out.headers.size() >= limits.max_headers) {
      return parse_result::too_large;
    }
    out.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                             std::string{trim(line.substr(colon + 1))});
  }
  return parse_result::ok;
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default:  return "Unknown";
  }
}

std::string render_response(const http_response& r, bool keep_alive,
                            bool head) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  // 304 must not carry a body; everything else gets explicit framing. A
  // HEAD reply advertises the GET body's framing but omits the bytes —
  // sending them would desynchronize a keep-alive connection.
  const bool has_body = r.status != 304;
  if (has_body) {
    out += "Content-Type: " + r.content_type + "\r\n";
  }
  out += "Content-Length: " +
         std::to_string(has_body ? r.body.size() : 0) + "\r\n";
  for (const auto& [k, v] : r.headers) out += k + ": " + v + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  if (has_body && !head) out += r.body;
  return out;
}

http_response error_response(int status, std::string_view message) {
  http_response r;
  r.status = status;
  r.body = "{\"error\":\"" + json::escape(message) + "\"}";
  return r;
}

}  // namespace leishen::api
