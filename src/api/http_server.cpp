#include "api/http_server.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <stdexcept>

#include "common/json.h"

namespace leishen::api {

namespace {

/// Sorted, re-encoded canonical form of a request: equal queries in any
/// parameter order share one cache slot.
std::string canonical_cache_key(const http_request& req) {
  auto params = req.query;
  std::sort(params.begin(), params.end());
  std::string key = req.path;
  char sep = '?';
  for (const auto& [k, v] : params) {
    key += sep;
    key += k;
    key += '=';
    key += v;
    sep = '&';
  }
  return key;
}

std::string make_etag(std::uint64_t version, const std::string& cache_key) {
  const std::size_t h = std::hash<std::string>{}(cache_key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%llu-%zx\"",
                static_cast<unsigned long long>(version), h);
  return buf;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20 ||
      s.find_first_not_of("0123456789") != std::string_view::npos) {
    return false;
  }
  out = 0;
  for (const char c : s) {
    if (out > (UINT64_MAX - (c - '0')) / 10) return false;  // overflow
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

std::optional<core::attack_pattern> parse_pattern(std::string_view s) {
  if (s == "KRP" || s == "krp") return core::attack_pattern::krp;
  if (s == "SBS" || s == "sbs") return core::attack_pattern::sbs;
  if (s == "MBS" || s == "mbs") return core::attack_pattern::mbs;
  return std::nullopt;
}

}  // namespace

std::string render_incident(const store::stored_incident& s) {
  return "{\"id\":" + std::to_string(s.id) + ",\"incident\":" +
         service::jsonl_sink::to_json_line(s.incident) + "}";
}

std::string render_page(const store::incident_page& page) {
  std::string out = "{\"total\":" + std::to_string(page.total) +
                    ",\"version\":" + std::to_string(page.version) +
                    ",\"count\":" + std::to_string(page.items.size()) +
                    ",\"has_more\":" + (page.has_more ? "true" : "false");
  if (page.has_more) {
    out += ",\"next\":\"" + render_cursor(page.next) + "\"";
  }
  out += ",\"items\":[";
  for (std::size_t i = 0; i < page.items.size(); ++i) {
    if (i > 0) out += ',';
    out += render_incident(page.items[i]);
  }
  out += "]}";
  return out;
}

std::string render_stats(const store::store_stats& s) {
  std::string out = "{\"ingested\":" + std::to_string(s.ingested) +
                    ",\"retracted\":" + std::to_string(s.retracted) +
                    ",\"active\":" + std::to_string(s.active) +
                    ",\"patterns\":{";
  for (int p = 0; p < 3; ++p) {
    if (p > 0) out += ',';
    out += '"';
    out += core::to_string(static_cast<core::attack_pattern>(p));
    out += "\":" + std::to_string(s.per_pattern[p]);
  }
  out += "},\"attackers\":" + std::to_string(s.attackers) +
         ",\"first_block\":" + std::to_string(s.first_block) +
         ",\"last_block\":" + std::to_string(s.last_block) +
         ",\"version\":" + std::to_string(s.version) + "}";
  return out;
}

std::string render_cursor(const store::incident_key& key) {
  return std::to_string(key.block) + "-" + std::to_string(key.tx) + "-" +
         std::to_string(key.id);
}

std::optional<store::incident_key> parse_cursor(std::string_view s) {
  const std::size_t d1 = s.find('-');
  if (d1 == std::string_view::npos) return std::nullopt;
  const std::size_t d2 = s.find('-', d1 + 1);
  if (d2 == std::string_view::npos) return std::nullopt;
  store::incident_key key;
  if (!parse_u64(s.substr(0, d1), key.block) ||
      !parse_u64(s.substr(d1 + 1, d2 - d1 - 1), key.tx) ||
      !parse_u64(s.substr(d2 + 1), key.id)) {
    return std::nullopt;
  }
  return key;
}

std::string http_date(std::chrono::system_clock::time_point tp) {
  const std::time_t t = std::chrono::system_clock::to_time_t(tp);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[64];
  std::strftime(buf, sizeof buf, "%a, %d %b %Y %H:%M:%S GMT", &tm);
  return buf;
}

http_server::http_server(const store::incident_store& store,
                         service::metrics_registry& metrics,
                         server_config cfg)
    : store_{store},
      metrics_{metrics},
      cfg_{std::move(cfg)},
      limiter_{cfg_.rate} {
  if (cfg_.workers == 0) cfg_.workers = 1;
  requests_ = &metrics_.get_counter("api_requests_total");
  rate_limited_ = &metrics_.get_counter("api_rate_limited_total");
  cache_hits_ = &metrics_.get_counter("api_cache_hits_total");
  cache_misses_ = &metrics_.get_counter("api_cache_misses_total");
  bad_requests_ = &metrics_.get_counter("api_bad_requests_total");
  internal_errors_ = &metrics_.get_counter("api_internal_errors_total");
  connections_ = &metrics_.get_counter("api_connections_total");
  refused_ = &metrics_.get_counter("api_connections_refused_total");
  request_seconds_ = &metrics_.get_histogram("api_request_seconds");
}

http_server::~http_server() { stop(); }

void http_server::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false, std::memory_order_release);
  listener_ = std::make_unique<net::listen_socket>(cfg_.endpoint);
  conns_ = std::make_unique<block_queue<conn>>(cfg_.pending_connections);
  pool_ = std::make_unique<thread_pool>(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  accept_thread_ = std::thread{[this] { accept_loop(); }};
}

void http_server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (conns_) conns_->close();
  if (pool_) pool_->wait();
  // Unserved queued connections (closed queue drains in worker_loop until
  // wait() returns, so anything left was never popped) are just closed.
  if (conns_) {
    while (auto c = conns_->try_pop()) ::close(c->fd);
  }
  pool_.reset();
  conns_.reset();
  listener_.reset();
}

std::uint16_t http_server::port() const {
  return listener_ ? listener_->port() : 0;
}

void http_server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::string peer;
    const int fd = listener_->accept_client(100, &peer);
    if (fd < 0) {
      if (listener_->closed()) break;
      continue;
    }
    connections_->add();
    if (!conns_->try_push(conn{fd, std::move(peer)})) {
      // Queue full (or closed during shutdown): refuse instead of queueing
      // unboundedly. The response is best-effort; the close is the point.
      refused_->add();
      http_response busy = error_response(503, "server busy");
      busy.status = 503;
      net::send_all(fd, "HTTP/1.1 503 Service Unavailable\r\n"
                        "Content-Type: application/json\r\n"
                        "Content-Length: " +
                            std::to_string(busy.body.size()) +
                            "\r\nConnection: close\r\n\r\n" + busy.body);
      ::close(fd);
    }
  }
}

void http_server::worker_loop() {
  while (auto c = conns_->pop()) serve_connection(std::move(*c));
}

void http_server::serve_connection(conn c) {
  // Everything inside the loop runs behind a catch-all: an exception
  // escaping a worker thread would std::terminate the whole monitor, so a
  // throwing request path must never propagate past this frame. The fd is
  // closed on the way out either way.
  try {
    serve_requests(c);
  } catch (...) {
    internal_errors_->add();
  }
  ::close(c.fd);
}

void http_server::serve_requests(const conn& c) {
  std::string buf;
  int idle_ms = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::size_t head_end = buf.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buf.size() > cfg_.limits.max_head_bytes) {
        bad_requests_->add();
        net::send_all(
            c.fd, render_response(
                      error_response(431, "request head too large"), false));
        break;
      }
      // Short slices keep shutdown responsive inside keep-alive idles.
      const int slice = std::min(200, std::max(1, cfg_.idle_timeout_ms));
      const int n = net::recv_some(c.fd, buf, slice);
      if (n == 0) break;  // peer closed
      if (n < 0) {
        idle_ms += slice;
        if (idle_ms >= cfg_.idle_timeout_ms) break;
        continue;
      }
      idle_ms = 0;
      continue;
    }

    const auto started = std::chrono::steady_clock::now();
    http_request req;
    const parse_result pr = parse_request_head(
        std::string_view{buf}.substr(0, head_end + 2), cfg_.limits, req);
    buf.erase(0, head_end + 4);

    http_response resp;
    bool keep = false;
    bool head = false;
    if (pr == parse_result::too_large) {
      bad_requests_->add();
      resp = error_response(431, "request head too large");
    } else if (pr == parse_result::malformed) {
      bad_requests_->add();
      resp = error_response(400, "malformed request");
    } else {
      const std::string* cl = req.header("content-length");
      std::uint64_t body_len = 0;
      if (cl != nullptr && (!parse_u64(*cl, body_len) || body_len != 0)) {
        // Read-only API: we never consume bodies, and leaving one in the
        // stream would desynchronize keep-alive framing.
        bad_requests_->add();
        resp = error_response(400, "request bodies are not supported");
      } else {
        head = req.method == "HEAD";
        try {
          resp = handle(req, client_identity(req, c.peer));
          keep = req.keep_alive();
        } catch (const std::exception&) {
          // The 500 boundary: a throwing route (allocation failure, a
          // future handler bug) answers this one request and keeps the
          // worker and connection pool alive.
          internal_errors_->add();
          resp = error_response(500, "internal error");
          keep = false;
        }
      }
    }
    request_seconds_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
    if (!net::send_all(c.fd, render_response(resp, keep, head))) break;
    if (!keep) break;
  }
}

std::string http_server::client_identity(const http_request& req,
                                         const std::string& peer) const {
  const std::string* api_key = req.header("x-api-key");
  if (api_key != nullptr && cfg_.api_keys.count(*api_key) > 0) {
    return "key:" + *api_key;
  }
  return peer;
}

http_response http_server::handle(const http_request& req,
                                  const std::string& client_key) {
  requests_->add();
  // Health probes come first: they bypass the rate limiter (a throttled
  // liveness probe reads as a dead instance) and the version-keyed cache
  // (readiness must reflect this instant, not the last store mutation).
  if (req.path == "/healthz" || req.path == "/readyz") {
    if (req.method != "GET" && req.method != "HEAD") {
      http_response r = error_response(405, "method not allowed");
      r.headers.emplace_back("Allow", "GET, HEAD");
      return r;
    }
    const bool is_ready = !cfg_.ready || cfg_.ready();
    http_response r;
    if (req.path == "/readyz" && !is_ready) {
      r = error_response(503, "not ready");
      r.headers.emplace_back("Retry-After", "1");
      return r;
    }
    r.body = cfg_.health_json ? cfg_.health_json()
                              : std::string{"{\"ready\":true}"};
    return r;
  }
  if (!limiter_.allow(client_key)) {
    rate_limited_->add();
    http_response r = error_response(429, "rate limit exceeded");
    r.headers.emplace_back("Retry-After",
                           std::to_string(limiter_.retry_after_sec()));
    return r;
  }
  if (req.method != "GET" && req.method != "HEAD") {
    http_response r = error_response(405, "method not allowed");
    r.headers.emplace_back("Allow", "GET, HEAD");
    return r;
  }

  // /metrics is live (its body mutates with every request served), so it
  // bypasses the version-keyed cache entirely.
  if (req.path == "/metrics") {
    http_response r;
    r.body = cfg_.metrics_json ? cfg_.metrics_json() : metrics_.to_json();
    return r;
  }

  const std::string cache_key = canonical_cache_key(req);
  const std::uint64_t version = store_.version();
  const std::string etag = make_etag(version, cache_key);
  const std::string* inm = req.header("if-none-match");
  if (inm != nullptr && (*inm == etag || *inm == "*")) {
    cache_hits_->add();
    http_response r;
    r.status = 304;
    r.headers.emplace_back("ETag", etag);
    return r;
  }

  if (auto cached = cache_lookup(cache_key, version)) {
    cache_hits_->add();
    return *cached;
  }
  cache_misses_->add();

  http_response r = route(req);
  if (r.status == 200) {
    r.headers.emplace_back("ETag", etag);
    r.headers.emplace_back("Last-Modified", http_date(store_.last_modified()));
    cache_store(cache_key, version, r);
  }
  return r;
}

http_response http_server::route(const http_request& req) {
  if (req.path == "/incidents") return incidents_list(req);
  constexpr std::string_view detail_prefix = "/incidents/";
  if (req.path.size() > detail_prefix.size() &&
      std::string_view{req.path}.substr(0, detail_prefix.size()) ==
          detail_prefix) {
    return incident_detail(
        std::string_view{req.path}.substr(detail_prefix.size()));
  }
  if (req.path == "/stats") {
    http_response r;
    r.body = render_stats(store_.stats());
    return r;
  }
  return error_response(404, "no such resource");
}

http_response http_server::incidents_list(const http_request& req) {
  store::incident_filter filter;
  std::optional<store::incident_key> after;
  std::size_t limit = cfg_.default_page_limit;

  for (const auto& [key, value] : req.query) {
    if (key == "attacker") {
      filter.attacker = value;
    } else if (key == "token") {
      try {
        filter.token = address::from_hex(value);
      } catch (const std::invalid_argument&) {
        return error_response(400, "token: not a hex address");
      }
    } else if (key == "app") {
      filter.app = value;
    } else if (key == "pattern") {
      filter.pattern = parse_pattern(value);
      if (!filter.pattern) {
        return error_response(400, "pattern: expected KRP, SBS or MBS");
      }
    } else if (key == "from") {
      if (!parse_u64(value, filter.from_block)) {
        return error_response(400, "from: not a block number");
      }
    } else if (key == "to") {
      if (!parse_u64(value, filter.to_block)) {
        return error_response(400, "to: not a block number");
      }
    } else if (key == "limit") {
      std::uint64_t n = 0;
      if (!parse_u64(value, n) || n == 0) {
        return error_response(400, "limit: not a positive integer");
      }
      limit = static_cast<std::size_t>(
          std::min<std::uint64_t>(n, cfg_.max_page_limit));
    } else if (key == "page") {
      after = parse_cursor(value);
      if (!after) {
        return error_response(400, "page: expected <block>-<tx>-<id>");
      }
    } else {
      return error_response(400, "unknown parameter: " + key);
    }
  }

  http_response r;
  r.body = render_page(store_.query(filter, after, limit));
  return r;
}

http_response http_server::incident_detail(std::string_view id_text) {
  std::uint64_t id = 0;
  if (!parse_u64(id_text, id)) {
    return error_response(400, "incident id: not an integer");
  }
  const std::optional<store::stored_incident> inc = store_.get(id);
  if (!inc) return error_response(404, "no such incident");
  http_response r;
  r.body = render_incident(*inc);
  return r;
}

std::optional<http_response> http_server::cache_lookup(
    const std::string& cache_key, std::uint64_t version) {
  const std::lock_guard lk{cache_mu_};
  const auto it = cache_.find(cache_key);
  if (it == cache_.end() || it->second.version != version) {
    return std::nullopt;
  }
  return it->second.response;
}

void http_server::cache_store(const std::string& cache_key,
                              std::uint64_t version, const http_response& r) {
  const std::lock_guard lk{cache_mu_};
  // Bounded by wholesale reset: entries are all same-generation in steady
  // state (one store version), so LRU bookkeeping would buy little.
  if (cache_.size() >= cfg_.cache_entries) cache_.clear();
  cache_[cache_key] = cache_entry{version, r};
}

}  // namespace leishen::api
