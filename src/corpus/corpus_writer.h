// Streaming .lsc writer: receipts in, one columnar corpus file out.
//
// Write once, scan forever. `append` streams each receipt's columns into
// per-section temporary files (so writing a multi-million-block history
// never holds more than the string dictionary in memory); `finish`
// assembles the final file — header, sections in order, dictionary, footer
// checksum — with one sequential copy pass, then deletes the temporaries.
//
// Receipts must arrive in chain order (block numbers nondecreasing, a
// block's receipts contiguous — the same precondition the simulated block
// source enforces), and each is structurally validated on append
// (`core::validate_receipt`): a corpus never stores a receipt the monitor
// would quarantine, which is what licenses the reader's payload-free
// decode of prefilter-rejected transactions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "chain/receipt.h"
#include "common/interner.h"
#include "corpus/format.h"

namespace leishen::corpus {

class corpus_writer {
 public:
  /// Opens the column temporaries next to `path`; throws corpus_error when
  /// any cannot be created.
  explicit corpus_writer(std::string path);
  /// Removes the temporaries (and nothing else) when `finish` never ran.
  ~corpus_writer();
  corpus_writer(const corpus_writer&) = delete;
  corpus_writer& operator=(const corpus_writer&) = delete;

  /// Append one receipt. Throws corpus_error on out-of-order blocks or
  /// dictionary overflow, core::malformed_receipt_error on a structurally
  /// invalid trace.
  void append(const chain::tx_receipt& receipt);

  /// Write the final file and delete the temporaries. Throws corpus_error
  /// when the corpus is empty (a corpus of nothing is a mistake, not a
  /// file) or on I/O failure. Returns the final file size in bytes.
  std::uint64_t finish();

  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return block_count_;
  }
  [[nodiscard]] std::uint64_t tx_count() const noexcept { return tx_count_; }
  [[nodiscard]] std::uint64_t event_count() const noexcept {
    return event_count_;
  }

 private:
  struct column {
    std::string path;
    std::FILE* file = nullptr;
    std::uint64_t bytes = 0;
  };

  void write_column(column& col, const void* data, std::size_t n);
  std::uint32_t dict_id(std::string_view s);
  void flush_block();

  std::string path_;
  column blocks_, txs_, sigs_, payload_;
  /// The dictionary under construction: the existing string_interner is
  /// exactly the string -> dense id map the format needs; `finish` dumps
  /// resolve(0..size) as the dict sections.
  string_interner dict_;
  block_rec open_block_{};
  bool block_open_ = false;
  std::uint64_t block_count_ = 0;
  std::uint64_t tx_count_ = 0;
  std::uint64_t event_count_ = 0;
  bool finished_ = false;
};

}  // namespace leishen::corpus
