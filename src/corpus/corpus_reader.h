// Zero-copy .lsc corpus reader over one read-only mapping.
//
// Open validates everything cheap eagerly — magic, version, section table
// bounds, dictionary offsets, signature-word kinds and dictionary ids —
// and (by default) the footer checksum with
// one sequential pass, so a truncated, bit-flipped or version-skewed file
// is rejected at open with a diagnostic instead of surfacing as garbage
// receipts mid-scan. After open, all accessors are non-throwing reads into
// the mapping.
//
// The scan-facing surface is two-tier, mirroring the scanner's prefilter
// split:
//   - `tx_may_be_flash_loan` answers the Table II prefilter from the packed
//     signature column alone (three u32 compares per event, no decode) —
//     exactly `core::may_be_flash_loan` of the materialized receipt;
//   - `materialize_tx` decodes one transaction into a caller-owned
//     tx_receipt (capacity reused across calls), optionally header-only
//     (empty trace) for transactions the prefilter already rejected.
//
// Long scans call `evict_block_range` over their consumed window as they
// advance: those column rows are madvise(DONTNEED)'d away, which is what
// keeps backfill RSS bounded by the eviction window instead of the corpus
// size — without touching pages other shards of the same mapping are
// still reading.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "chain/receipt.h"
#include "common/mmap_file.h"
#include "corpus/format.h"

namespace leishen::corpus {

struct reader_options {
  /// Verify the footer checksum at open (one sequential read of the file).
  /// Leave on outside of microbenchmarks: it is the only defense against
  /// silent mid-file corruption.
  bool verify_checksum = true;
};

class corpus_reader {
 public:
  /// Maps and validates `path`; throws corpus_error on any structural
  /// defect (missing/oversized sections, checksum mismatch, wrong version,
  /// empty corpus) and std::runtime_error when the file cannot be mapped.
  explicit corpus_reader(const std::string& path, reader_options opts = {});

  corpus_reader(const corpus_reader&) = delete;
  corpus_reader& operator=(const corpus_reader&) = delete;

  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return hdr_->block_count;
  }
  [[nodiscard]] std::uint64_t tx_count() const noexcept {
    return hdr_->tx_count;
  }
  [[nodiscard]] std::uint64_t event_count() const noexcept {
    return hdr_->event_count;
  }
  [[nodiscard]] std::uint64_t dict_count() const noexcept {
    return hdr_->dict_count;
  }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept {
    return map_.size();
  }

  [[nodiscard]] const block_rec& block(std::uint64_t i) const noexcept {
    return blocks_[i];
  }
  [[nodiscard]] const tx_rec& tx(std::uint64_t t) const noexcept {
    return txs_[t];
  }
  /// Dictionary string `sid` as a view into the mapping.
  [[nodiscard]] std::string_view dict(std::uint32_t sid) const noexcept {
    return {dict_bytes_ + dict_offsets_[sid],
            static_cast<std::size_t>(dict_offsets_[sid + 1] -
                                     dict_offsets_[sid])};
  }

  /// The Table II prefilter verdict for transaction `t`, from the packed
  /// signature column: identical to core::may_be_flash_loan of the
  /// materialized receipt (success gate included).
  [[nodiscard]] bool tx_may_be_flash_loan(std::uint64_t t) const noexcept {
    const tx_rec& rec = txs_[t];
    if (rec.success == 0) return false;
    const std::uint32_t* sig = sigs_ + rec.first_event;
    for (std::uint32_t i = 0; i < rec.event_count; ++i) {
      const std::uint32_t w = sig[i];
      if (w == trigger_[0] || w == trigger_[1] || w == trigger_[2]) {
        return true;
      }
    }
    return false;
  }

  /// Decode transaction `t` into `out`, reusing its buffers (events are
  /// cleared, capacity kept). `payload` false decodes the header fields
  /// only and leaves the trace empty — the allocation-free shape for
  /// prefilter-rejected transactions (sound because the writer validated
  /// every stored receipt). `block_number` is the owning block's number
  /// (tx records do not repeat it).
  void materialize_tx(std::uint64_t t, std::uint64_t block_number,
                      chain::tx_receipt& out, bool payload = true) const;

  /// Index of the first block with number > `number` (== block_count() when
  /// none). Binary search; block numbers are strictly increasing.
  [[nodiscard]] std::uint64_t first_block_after(std::uint64_t number) const
      noexcept;

  /// Sum of tx counts of blocks [begin, end) — backfill shard planning.
  [[nodiscard]] std::uint64_t tx_count_in_blocks(std::uint64_t begin,
                                                 std::uint64_t end) const
      noexcept;

  /// Drop the resident pages of every column row belonging to blocks with
  /// index in [from, to) — callers pass their own consumed window (last
  /// eviction watermark to current cursor), never a global prefix, so
  /// concurrent shards scanning other ranges of the same mapping keep
  /// their working set.
  void evict_block_range(std::uint64_t from, std::uint64_t to) const
      noexcept;

 private:
  [[nodiscard]] const std::byte* section(unsigned s) const noexcept {
    return map_.data() + hdr_->section_offset[s];
  }

  mmap_file map_;
  const file_header* hdr_ = nullptr;
  const block_rec* blocks_ = nullptr;
  const tx_rec* txs_ = nullptr;
  const std::uint32_t* sigs_ = nullptr;
  const std::uint8_t* payload_ = nullptr;
  const std::uint64_t* dict_offsets_ = nullptr;
  const char* dict_bytes_ = nullptr;
  /// Packed signature words of the three Table II triggers under THIS
  /// corpus's dictionary (kSigNever for triggers the dictionary lacks).
  std::uint32_t trigger_[3] = {kSigNever, kSigNever, kSigNever};
};

}  // namespace leishen::corpus
