// Seeded corpus synthesis at paper scale: stream a multi-million-block
// receipt history through `corpus_writer` in bounded memory.
//
// The receipt populations come from `verify::receipt_gen`'s streaming
// cursor — the same generator the differential tests fuzz with, so every
// structural corner the scan pipeline handles appears in backfill corpora
// too. The knobs here re-balance the mix for realism: most transactions
// are plain transfers, flash loan candidates are the rare event (the paper
// measures ~0.02 incidents per block over its 2020-2021 window), and the
// whole history is a pure function of `(seed, options)`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "verify/receipt_gen.h"

namespace leishen::corpus {

struct corpus_build_options {
  /// Distinct block records to emit (the generator stops at the first
  /// block boundary at or past this count, so blocks are never split).
  std::uint64_t blocks = 1000;
  /// Max transactions sharing one block number.
  int block_span = 4;
  /// Fraction of transactions that are a single plain transfer.
  double plain_transfer_fraction = 0.97;
  /// Among the rest, fraction that is structured non-flash-loan noise
  /// (prefilter rejects plus truncated-trigger accepts).
  double noise_fraction = 0.75;
  /// Probability a flash loan body carries a 2^190+-scale amount.
  double huge_amount_fraction = 0.15;
  /// Transactions synthesized per streaming chunk (memory high-water).
  std::uint64_t chunk_txs = 1 << 16;
};

struct corpus_build_result {
  std::uint64_t blocks = 0;
  std::uint64_t transactions = 0;
  std::uint64_t events = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t first_block = 0;
  std::uint64_t last_block = 0;
  /// The tagging substrate the stored receipts refer to; scanners over
  /// this corpus must be configured with its registry and labels.
  std::shared_ptr<verify::synthetic_world> world;
};

/// Synthesize and write the corpus `(seed, options)` describes to `path`.
/// Throws corpus_error / std::system_error on I/O failure. Deterministic:
/// same inputs, bit-identical file.
corpus_build_result build_corpus(const std::string& path, std::uint64_t seed,
                                 const corpus_build_options& options = {});

}  // namespace leishen::corpus
