#include "corpus/corpus_generator.h"

#include <algorithm>
#include <vector>

#include "corpus/corpus_writer.h"

namespace leishen::corpus {

corpus_build_result build_corpus(const std::string& path, std::uint64_t seed,
                                 const corpus_build_options& options) {
  verify::generator_options gen;
  gen.block_span = options.block_span;
  gen.plain_transfer_fraction = options.plain_transfer_fraction;
  gen.noise_fraction = options.noise_fraction;
  gen.huge_amount_fraction = options.huge_amount_fraction;

  corpus_build_result result;
  result.world = verify::make_world(seed);
  verify::generation_cursor cursor = verify::start_generation(seed, gen);
  result.first_block = cursor.block;

  corpus_writer writer{path};
  std::vector<chain::tx_receipt> chunk;
  const std::uint64_t chunk_txs = std::max<std::uint64_t>(1, options.chunk_txs);
  // Count a block when its first receipt is appended; stop at the first
  // receipt of block `target`+1 so the last block is always complete. The
  // cursor generates a fixed sequence, so where the chunk boundaries fall
  // cannot change the file.
  std::uint64_t last_block = 0;
  std::uint64_t distinct_blocks = 0;
  bool done = false;
  while (!done) {
    chunk.clear();
    verify::generate_receipts_into(*result.world, gen, cursor, chunk_txs,
                                   chunk);
    for (chain::tx_receipt& rec : chunk) {
      if (distinct_blocks == 0 || rec.block_number != last_block) {
        if (distinct_blocks >= options.blocks) {
          done = true;
          break;
        }
        ++distinct_blocks;
        last_block = rec.block_number;
      }
      writer.append(rec);
    }
  }

  result.last_block = last_block;
  result.file_bytes = writer.finish();
  result.blocks = writer.block_count();
  result.transactions = writer.tx_count();
  result.events = writer.event_count();
  return result;
}

}  // namespace leishen::corpus
