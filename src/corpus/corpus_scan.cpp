#include "corpus/corpus_scan.h"

#include <algorithm>

namespace leishen::corpus {

corpus_scan_result scan_corpus(const corpus_reader& reader,
                               const core::scanner& scanner,
                               std::uint64_t begin_block,
                               std::uint64_t end_block,
                               const corpus_scan_options& options) {
  corpus_scan_result result;
  end_block = std::min(end_block, reader.block_count());
  const bool use_prefilter = scanner.options().prefilter;

  chain::tx_receipt scratch;
  std::vector<core::incident> flagged;
  std::uint64_t last_evict = begin_block;
  for (std::uint64_t b = begin_block; b < end_block; ++b) {
    const block_rec& blk = reader.block(b);
    for (std::uint64_t t = blk.first_tx; t < blk.first_tx + blk.tx_count;
         ++t) {
      core::receipt_view view;
      view.may_be_flash_loan = reader.tx_may_be_flash_loan(t);
      if (view.may_be_flash_loan || !use_prefilter) {
        reader.materialize_tx(t, blk.number, scratch, /*payload=*/true);
        view.full = &scratch;
      }
      flagged.clear();
      scanner.scan_view(view, result.stats, flagged);
      for (core::incident& inc : flagged) {
        result.incidents.push_back(
            service::monitor_incident{blk.number, std::move(inc)});
      }
    }
    result.transactions += blk.tx_count;
    ++result.blocks;
    if (options.evict_every_blocks != 0 &&
        b - last_evict >= options.evict_every_blocks) {
      reader.evict_block_range(last_evict, b);
      last_evict = b;
    }
  }
  return result;
}

}  // namespace leishen::corpus
