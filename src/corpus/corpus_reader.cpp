#include "corpus/corpus_reader.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "core/flashloan_id.h"

namespace leishen::corpus {

namespace {

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw corpus_error{"corpus '" + path + "': " + why};
}

/// Bounded payload decoder: every read is range-checked against the
/// payload section end, so a corrupted offset that survived the checksum
/// (checksum disabled) still cannot read out of the mapping.
struct payload_cursor {
  const std::uint8_t* at;
  const std::uint8_t* end;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - at) < n) {
      throw corpus_error{"corpus payload truncated mid-event"};
    }
  }
  address take_address() {
    need(address::kSize);
    std::array<std::uint8_t, address::kSize> bytes;
    std::memcpy(bytes.data(), at, address::kSize);
    at += address::kSize;
    return address{bytes};
  }
  std::int32_t take_i32() {
    need(4);
    std::int32_t v = 0;
    std::memcpy(&v, at, 4);
    at += 4;
    return v;
  }
  u256 take_u256() {
    need(1);
    const std::uint8_t n = *at++;
    if (n > 4) throw corpus_error{"corpus payload: u256 limb count > 4"};
    need(static_cast<std::size_t>(n) * 8);
    std::uint64_t limbs[4] = {0, 0, 0, 0};
    for (std::uint8_t i = 0; i < n; ++i) {
      std::memcpy(&limbs[i], at, 8);
      at += 8;
    }
    return u256{limbs[0], limbs[1], limbs[2], limbs[3]};
  }
};

}  // namespace

corpus_reader::corpus_reader(const std::string& path, reader_options opts)
    : map_{mmap_file::open(path)} {
  if (map_.size() < sizeof(file_header) + sizeof(file_footer)) {
    reject(path, "file too small to hold a header and footer (" +
                     std::to_string(map_.size()) + " bytes)");
  }
  hdr_ = reinterpret_cast<const file_header*>(map_.data());
  if (std::memcmp(hdr_->magic, kCorpusMagic, 8) != 0) {
    reject(path, "bad magic (not a .lsc corpus)");
  }
  if (hdr_->version != kCorpusVersion) {
    reject(path, "unsupported format version " +
                     std::to_string(hdr_->version) + " (reader speaks " +
                     std::to_string(kCorpusVersion) + ")");
  }
  if (hdr_->header_bytes != sizeof(file_header)) {
    reject(path, "header size mismatch");
  }
  const std::uint64_t payload_end = map_.size() - sizeof(file_footer);

  // The footer sits wherever the dictionary ends (no tail padding), so
  // copy it out instead of casting a possibly misaligned pointer.
  file_footer footer_copy;
  std::memcpy(&footer_copy, map_.data() + payload_end, sizeof footer_copy);
  const file_footer* footer = &footer_copy;
  if (std::memcmp(footer->magic, kFooterMagic, 8) != 0) {
    reject(path, "bad footer magic (truncated or overwritten tail)");
  }
  if (opts.verify_checksum) {
    map_.advise_sequential();
    std::uint64_t sum = kFnvOffsetBasis;
    // Chunked, evicting the hashed prefix as it goes: the verification
    // pass touches every page of a possibly multi-GB file, and without the
    // periodic DONTNEED those pages stay resident — the scan that follows
    // would start with RSS already at file size, defeating its own
    // eviction window.
    std::uint64_t at = 0;
    std::uint64_t last_evict = 0;
    while (at < payload_end) {
      const std::uint64_t n =
          std::min<std::uint64_t>(payload_end - at, 1u << 20);
      sum = fnv1a64(map_.data() + at, n, sum);
      at += n;
      if (at - last_evict >= (64u << 20)) {
        map_.advise_dontneed(last_evict, at - last_evict);
        last_evict = at;
      }
    }
    map_.advise_dontneed(last_evict, payload_end - last_evict);
    if (sum != footer->checksum) {
      reject(path, "footer checksum mismatch (stored " +
                       std::to_string(footer->checksum) + ", computed " +
                       std::to_string(sum) + ") — corrupted file");
    }
  }

  // Header counts are untrusted u64s: bound each against the file size
  // BEFORE they feed any multiplication or loop bound — a 2^59-scale count
  // would wrap `count * sizeof(rec)` into a small product that matches a
  // tiny section, and the span-validation loops below would then iterate
  // the huge declared count straight out of the mapping.
  if (hdr_->block_count == 0 || hdr_->tx_count == 0) {
    reject(path, "empty corpus (0 blocks)");
  }
  if (hdr_->block_count > payload_end / sizeof(block_rec) ||
      hdr_->tx_count > payload_end / sizeof(tx_rec) ||
      hdr_->event_count > payload_end / 4) {
    reject(path, "declared counts exceed the file size");
  }
  if (hdr_->dict_count == 0 || hdr_->dict_count > kMaxDictEntries) {
    reject(path, "dictionary count out of range");
  }

  // Section table: in-bounds, aligned, and large enough for the declared
  // counts (all products overflow-free after the bounds above).
  const std::uint64_t expected_bytes[kSectionCount] = {
      hdr_->block_count * sizeof(block_rec),
      hdr_->tx_count * sizeof(tx_rec),
      hdr_->event_count * 4,
      hdr_->section_bytes[kSecPayload],  // variable; bounds-checked below
      (hdr_->dict_count + 1) * 8,
      hdr_->section_bytes[kSecDictBytes]};
  for (unsigned s = 0; s < kSectionCount; ++s) {
    const std::uint64_t off = hdr_->section_offset[s];
    const std::uint64_t len = hdr_->section_bytes[s];
    if (off < sizeof(file_header) || off % kSectionAlign != 0 ||
        off > payload_end || len > payload_end - off) {
      reject(path, "section " + std::to_string(s) + " out of bounds");
    }
    if (len != expected_bytes[s]) {
      reject(path, "section " + std::to_string(s) +
                       " size does not match declared counts");
    }
  }

  blocks_ = reinterpret_cast<const block_rec*>(section(kSecBlocks));
  txs_ = reinterpret_cast<const tx_rec*>(section(kSecTxs));
  sigs_ = reinterpret_cast<const std::uint32_t*>(section(kSecSigs));
  payload_ = reinterpret_cast<const std::uint8_t*>(section(kSecPayload));
  dict_offsets_ = reinterpret_cast<const std::uint64_t*>(
      section(kSecDictOffsets));
  dict_bytes_ = reinterpret_cast<const char*>(section(kSecDictBytes));

  // Dictionary offsets: monotone and in-bounds, validated once here so
  // `dict()` can be an unchecked two-load accessor.
  const std::uint64_t dict_len = hdr_->section_bytes[kSecDictBytes];
  for (std::uint64_t i = 0; i <= hdr_->dict_count; ++i) {
    if (dict_offsets_[i] > dict_len ||
        (i > 0 && dict_offsets_[i] < dict_offsets_[i - 1])) {
      reject(path, "dictionary offsets not monotone/in-bounds");
    }
  }

  // Block/tx spans: each block's tx span and each tx's event span must be
  // inside the declared columns (validated eagerly; the scan paths then
  // index without checks).
  std::uint64_t want_tx = 0;
  std::uint64_t prev_number = 0;
  for (std::uint64_t b = 0; b < hdr_->block_count; ++b) {
    if (blocks_[b].first_tx != want_tx || blocks_[b].tx_count == 0) {
      reject(path, "block tx spans are not contiguous");
    }
    if (b > 0 && blocks_[b].number <= prev_number) {
      reject(path, "block numbers not strictly increasing");
    }
    prev_number = blocks_[b].number;
    want_tx += blocks_[b].tx_count;
  }
  if (want_tx != hdr_->tx_count) {
    reject(path, "block tx spans do not cover the tx column");
  }
  std::uint64_t want_event = 0;
  const std::uint64_t payload_len = hdr_->section_bytes[kSecPayload];
  for (std::uint64_t t = 0; t < hdr_->tx_count; ++t) {
    if (txs_[t].first_event != want_event) {
      reject(path, "tx event spans are not contiguous");
    }
    want_event += txs_[t].event_count;
    // Payload offsets only need to be monotone and in-bounds: record
    // lengths are implied by the event decode, which is itself
    // range-checked against the section end.
    if (txs_[t].payload_offset > payload_len ||
        (t > 0 && txs_[t].payload_offset < txs_[t - 1].payload_offset)) {
      reject(path, "tx payload offsets not monotone/in-bounds");
    }
    if (txs_[t].desc_sid >= hdr_->dict_count ||
        txs_[t].revert_sid >= hdr_->dict_count) {
      reject(path, "tx dictionary id out of range");
    }
  }
  if (want_event != hdr_->event_count) {
    reject(path, "tx event spans do not cover the signature column");
  }

  // Signature words: kind and dictionary id validated once here, because
  // the scan paths hand sig_dict_id(w) to the unchecked dict() accessor —
  // a crafted id (up to 2^30 - 1) would otherwise index far past the
  // offset table and yield a wild string_view. The checksum is integrity,
  // not authentication (recomputable, and can be disabled), so this must
  // hold structurally. Chunked with periodic eviction like the checksum
  // pass: this column is 4 bytes/event and can be multi-GB.
  {
    constexpr std::uint64_t kEvictEveryWords = 16u << 20;  // 64 MB
    std::uint64_t last_evict = 0;
    for (std::uint64_t i = 0; i < hdr_->event_count; ++i) {
      const std::uint32_t w = sigs_[i];
      if ((w & 3u) == 3u || sig_dict_id(w) >= hdr_->dict_count) {
        reject(path, "signature word " + std::to_string(i) +
                         " has an unknown kind or out-of-range dictionary "
                         "id");
      }
      if (i - last_evict >= kEvictEveryWords) {
        map_.advise_dontneed(hdr_->section_offset[kSecSigs] + last_evict * 4,
                             (i - last_evict) * 4);
        last_evict = i;
      }
    }
    if (last_evict != 0) {
      map_.advise_dontneed(hdr_->section_offset[kSecSigs] + last_evict * 4,
                           (hdr_->event_count - last_evict) * 4);
    }
  }

  // Resolve the Table II triggers against this corpus's dictionary once.
  // A linear pass over the (small) dictionary; absent names stay kSigNever
  // (matching no event, exactly like a corpus that never saw the trigger).
  for (std::uint32_t sid = 0; sid < hdr_->dict_count; ++sid) {
    const std::string_view s = dict(sid);
    if (s == core::kPrefilterUniswapCallback) {
      trigger_[0] = pack_sig(sid, kSigCall);
    } else if (s == core::kPrefilterAaveEvent) {
      trigger_[1] = pack_sig(sid, kSigLog);
    } else if (s == core::kPrefilterDydxEvent) {
      trigger_[2] = pack_sig(sid, kSigLog);
    }
  }
}

void corpus_reader::materialize_tx(std::uint64_t t,
                                   std::uint64_t block_number,
                                   chain::tx_receipt& out,
                                   bool payload) const {
  const tx_rec& rec = txs_[t];
  out.tx_index = rec.tx_index;
  out.block_number = block_number;
  out.timestamp = rec.timestamp;
  out.success = rec.success != 0;
  {
    std::array<std::uint8_t, address::kSize> bytes;
    std::memcpy(bytes.data(), rec.from, address::kSize);
    out.from = address{bytes};
    std::memcpy(bytes.data(), rec.to, address::kSize);
    out.to = address{bytes};
  }
  out.description.assign(dict(rec.desc_sid));
  out.revert_reason.assign(dict(rec.revert_sid));
  out.events.clear();
  if (!payload || rec.event_count == 0) return;

  out.events.reserve(rec.event_count);
  const std::uint32_t* sig = sigs_ + rec.first_event;
  payload_cursor cur{payload_ + rec.payload_offset,
                     payload_ + hdr_->section_bytes[kSecPayload]};
  for (std::uint32_t i = 0; i < rec.event_count; ++i) {
    const std::uint32_t w = sig[i];
    switch (sig_kind_of(w)) {
      case kSigCall: {
        chain::call_record call;
        call.caller = cur.take_address();
        call.callee = cur.take_address();
        call.depth = cur.take_i32();
        call.method.assign(dict(sig_dict_id(w)));
        out.events.emplace_back(std::move(call));
        break;
      }
      case kSigInternal: {
        chain::internal_tx itx;
        itx.from = cur.take_address();
        itx.to = cur.take_address();
        itx.amount = cur.take_u256();
        out.events.emplace_back(itx);
        break;
      }
      case kSigLog: {
        cur.need(1);
        const std::uint8_t flags = *cur.at++;
        chain::event_log log;
        log.emitter = cur.take_address();
        if (flags & kLogAddr0) log.addr0 = cur.take_address();
        if (flags & kLogAddr1) log.addr1 = cur.take_address();
        if (flags & kLogAddr2) log.addr2 = cur.take_address();
        if (flags & kLogAmount0) log.amount0 = cur.take_u256();
        if (flags & kLogAmount1) log.amount1 = cur.take_u256();
        if (flags & kLogAmount2) log.amount2 = cur.take_u256();
        if (flags & kLogAmount3) log.amount3 = cur.take_u256();
        log.name.assign(dict(sig_dict_id(w)));
        out.events.emplace_back(std::move(log));
        break;
      }
      default:
        throw corpus_error{"corpus signature column: unknown event kind"};
    }
  }
}

std::uint64_t corpus_reader::first_block_after(std::uint64_t number) const
    noexcept {
  std::uint64_t lo = 0, hi = hdr_->block_count;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].number <= number) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint64_t corpus_reader::tx_count_in_blocks(std::uint64_t begin,
                                                std::uint64_t end) const
    noexcept {
  if (begin >= end) return 0;
  const std::uint64_t first = blocks_[begin].first_tx;
  const std::uint64_t last = end < hdr_->block_count
                                 ? blocks_[end].first_tx
                                 : hdr_->tx_count;
  return last - first;
}

void corpus_reader::evict_block_range(std::uint64_t from,
                                      std::uint64_t to) const noexcept {
  to = std::min(to, hdr_->block_count);
  if (from >= to) return;
  // Column boundary (tx index, event index, payload offset) at block
  // index `b` — one past the last row of block b-1.
  const auto column_mark = [this](std::uint64_t b, std::uint64_t& tx,
                                  std::uint64_t& event,
                                  std::uint64_t& payload) {
    tx = b < hdr_->block_count ? blocks_[b].first_tx : hdr_->tx_count;
    event = tx < hdr_->tx_count ? txs_[tx].first_event : hdr_->event_count;
    payload = tx < hdr_->tx_count ? txs_[tx].payload_offset
                                  : hdr_->section_bytes[kSecPayload];
  };
  std::uint64_t tx0, event0, payload0, tx1, event1, payload1;
  column_mark(from, tx0, event0, payload0);
  column_mark(to, tx1, event1, payload1);
  map_.advise_dontneed(
      hdr_->section_offset[kSecBlocks] + from * sizeof(block_rec),
      (to - from) * sizeof(block_rec));
  map_.advise_dontneed(hdr_->section_offset[kSecTxs] + tx0 * sizeof(tx_rec),
                       (tx1 - tx0) * sizeof(tx_rec));
  map_.advise_dontneed(hdr_->section_offset[kSecSigs] + event0 * 4,
                       (event1 - event0) * 4);
  map_.advise_dontneed(hdr_->section_offset[kSecPayload] + payload0,
                       payload1 - payload0);
}

}  // namespace leishen::corpus
