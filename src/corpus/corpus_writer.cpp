#include "corpus/corpus_writer.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <variant>

#include "core/scanner.h"

namespace leishen::corpus {

namespace {

/// Compact u256: a significant-limb count byte, then that many LE u64
/// limbs, least significant first. Amounts are overwhelmingly 1-2 limbs,
/// so this beats fixed 32-byte storage ~3x.
void encode_u256(std::vector<std::uint8_t>& out, const u256& v) {
  std::uint8_t n = 0;
  for (std::uint8_t i = 0; i < 4; ++i) {
    if (v.limb(i) != 0) n = i + 1;
  }
  out.push_back(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    const std::uint64_t limb = v.limb(i);
    const std::size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &limb, 8);
  }
}

void encode_address(std::vector<std::uint8_t>& out, const address& a) {
  const std::size_t at = out.size();
  out.resize(at + address::kSize);
  std::memcpy(out.data() + at, a.bytes().data(), address::kSize);
}

void encode_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

}  // namespace

corpus_writer::corpus_writer(std::string path) : path_{std::move(path)} {
  const auto open_column = [this](column& col, const char* suffix) {
    col.path = path_ + suffix;
    // "+" because finish() reads the columns back for the assembly pass.
    col.file = std::fopen(col.path.c_str(), "wb+");
    if (col.file == nullptr) {
      throw corpus_error{"corpus_writer: cannot create temporary '" +
                         col.path + "'"};
    }
  };
  open_column(blocks_, ".blocks.tmp");
  open_column(txs_, ".txs.tmp");
  open_column(sigs_, ".sigs.tmp");
  open_column(payload_, ".payload.tmp");
  // Id 0 is the empty string, so absent description/revert fields encode as
  // 0 without a special case (mirrors the tag interner's pre-seeded "").
  dict_.intern("");
}

corpus_writer::~corpus_writer() {
  for (column* col : {&blocks_, &txs_, &sigs_, &payload_}) {
    if (col->file != nullptr) std::fclose(col->file);
    if (!finished_) {
      std::error_code ec;
      std::filesystem::remove(col->path, ec);
    }
  }
}

void corpus_writer::write_column(column& col, const void* data,
                                 std::size_t n) {
  if (std::fwrite(data, 1, n, col.file) != n) {
    throw corpus_error{"corpus_writer: write failed on '" + col.path + "'"};
  }
  col.bytes += n;
}

std::uint32_t corpus_writer::dict_id(std::string_view s) {
  // Intern first: a writer sitting exactly at the cap must keep accepting
  // strings it has already stored (they reuse their existing id). Only a
  // NEWLY allocated id can overflow the format's id space.
  const std::uint32_t id = dict_.intern(s);
  if (id >= kMaxDictEntries) {
    throw corpus_error{
        "corpus_writer: dictionary overflow (2^30 distinct strings)"};
  }
  return id;
}

void corpus_writer::flush_block() {
  if (!block_open_) return;
  write_column(blocks_, &open_block_, sizeof open_block_);
  ++block_count_;
  block_open_ = false;
}

void corpus_writer::append(const chain::tx_receipt& receipt) {
  if (finished_) throw corpus_error{"corpus_writer: append after finish"};
  core::validate_receipt(receipt);
  if (block_open_ && receipt.block_number < open_block_.number) {
    throw corpus_error{
        "corpus_writer: receipts out of chain order (block " +
        std::to_string(receipt.block_number) + " after " +
        std::to_string(open_block_.number) + ")"};
  }
  if (!block_open_ || receipt.block_number != open_block_.number) {
    flush_block();
    open_block_ = block_rec{};
    open_block_.number = receipt.block_number;
    open_block_.timestamp = receipt.timestamp;
    open_block_.first_tx = tx_count_;
    block_open_ = true;
  }
  ++open_block_.tx_count;

  tx_rec tx;
  tx.tx_index = receipt.tx_index;
  tx.timestamp = receipt.timestamp;
  tx.first_event = event_count_;
  tx.payload_offset = payload_.bytes;
  tx.event_count = static_cast<std::uint32_t>(receipt.events.size());
  tx.desc_sid = dict_id(receipt.description);
  tx.revert_sid = dict_id(receipt.revert_reason);
  tx.success = receipt.success ? 1 : 0;
  std::memcpy(tx.from, receipt.from.bytes().data(), address::kSize);
  std::memcpy(tx.to, receipt.to.bytes().data(), address::kSize);

  // Per-tx scratch, reused across appends.
  static thread_local std::vector<std::uint32_t> sig_words;
  static thread_local std::vector<std::uint8_t> body;
  sig_words.clear();
  body.clear();

  for (const chain::trace_event& ev : receipt.events) {
    if (const auto* call = std::get_if<chain::call_record>(&ev)) {
      sig_words.push_back(pack_sig(dict_id(call->method), kSigCall));
      encode_address(body, call->caller);
      encode_address(body, call->callee);
      encode_i32(body, call->depth);
    } else if (const auto* itx = std::get_if<chain::internal_tx>(&ev)) {
      sig_words.push_back(pack_sig(0, kSigInternal));
      encode_address(body, itx->from);
      encode_address(body, itx->to);
      encode_u256(body, itx->amount);
    } else {
      const auto& log = std::get<chain::event_log>(ev);
      sig_words.push_back(pack_sig(dict_id(log.name), kSigLog));
      std::uint8_t flags = 0;
      if (!log.addr0.is_zero()) flags |= kLogAddr0;
      if (!log.addr1.is_zero()) flags |= kLogAddr1;
      if (!log.addr2.is_zero()) flags |= kLogAddr2;
      if (!log.amount0.is_zero()) flags |= kLogAmount0;
      if (!log.amount1.is_zero()) flags |= kLogAmount1;
      if (!log.amount2.is_zero()) flags |= kLogAmount2;
      if (!log.amount3.is_zero()) flags |= kLogAmount3;
      body.push_back(flags);
      encode_address(body, log.emitter);
      if (flags & kLogAddr0) encode_address(body, log.addr0);
      if (flags & kLogAddr1) encode_address(body, log.addr1);
      if (flags & kLogAddr2) encode_address(body, log.addr2);
      if (flags & kLogAmount0) encode_u256(body, log.amount0);
      if (flags & kLogAmount1) encode_u256(body, log.amount1);
      if (flags & kLogAmount2) encode_u256(body, log.amount2);
      if (flags & kLogAmount3) encode_u256(body, log.amount3);
    }
  }

  write_column(txs_, &tx, sizeof tx);
  if (!sig_words.empty()) {
    write_column(sigs_, sig_words.data(), sig_words.size() * 4);
  }
  if (!body.empty()) write_column(payload_, body.data(), body.size());
  event_count_ += sig_words.size();
  ++tx_count_;
}

std::uint64_t corpus_writer::finish() {
  if (finished_) throw corpus_error{"corpus_writer: double finish"};
  flush_block();
  if (block_count_ == 0) {
    throw corpus_error{"corpus_writer: refusing to write an empty corpus"};
  }
  for (column* col : {&blocks_, &txs_, &sigs_, &payload_}) {
    if (std::fflush(col->file) != 0) {
      throw corpus_error{"corpus_writer: flush failed on '" + col->path +
                         "'"};
    }
  }

  // Dictionary sections, small enough to assemble in memory.
  const std::uint64_t dict_count = dict_.size();
  if (dict_count > kMaxDictEntries) {
    // Reachable only by appending past a dict_id overflow that the caller
    // swallowed; refuse rather than emit a file every reader rejects.
    throw corpus_error{
        "corpus_writer: dictionary overflow (2^30 distinct strings)"};
  }
  std::vector<std::uint64_t> dict_offsets;
  std::string dict_bytes;
  dict_offsets.reserve(dict_count + 1);
  for (std::uint64_t i = 0; i < dict_count; ++i) {
    dict_offsets.push_back(dict_bytes.size());
    dict_bytes += dict_.resolve(static_cast<std::uint32_t>(i));
  }
  dict_offsets.push_back(dict_bytes.size());

  // Section layout: header, then each section 16-byte aligned.
  file_header hdr;
  std::memcpy(hdr.magic, kCorpusMagic, 8);
  hdr.header_bytes = sizeof hdr;
  hdr.block_count = block_count_;
  hdr.tx_count = tx_count_;
  hdr.event_count = event_count_;
  hdr.dict_count = dict_count;
  const std::uint64_t section_sizes[kSectionCount] = {
      blocks_.bytes, txs_.bytes, sigs_.bytes, payload_.bytes,
      dict_offsets.size() * 8, dict_bytes.size()};
  std::uint64_t at = sizeof hdr;
  for (unsigned s = 0; s < kSectionCount; ++s) {
    at = (at + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
    hdr.section_offset[s] = at;
    hdr.section_bytes[s] = section_sizes[s];
    at += section_sizes[s];
  }

  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    throw corpus_error{"corpus_writer: cannot create '" + path_ + "'"};
  }
  std::uint64_t checksum = kFnvOffsetBasis;
  std::uint64_t written = 0;
  const auto emit = [&](const void* data, std::size_t n) {
    if (std::fwrite(data, 1, n, out) != n) {
      std::fclose(out);
      throw corpus_error{"corpus_writer: write failed on '" + path_ + "'"};
    }
    checksum = fnv1a64(data, n, checksum);
    written += n;
  };
  const auto pad_to = [&](std::uint64_t offset) {
    static constexpr char zeros[kSectionAlign] = {};
    while (written < offset) {
      emit(zeros, std::min<std::size_t>(kSectionAlign, offset - written));
    }
  };
  const auto copy_column = [&](column& col) {
    std::rewind(col.file);
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, col.file)) > 0) {
      emit(buf, got);
    }
    if (std::ferror(col.file) != 0) {
      std::fclose(out);
      throw corpus_error{"corpus_writer: read-back failed on '" + col.path +
                         "'"};
    }
  };

  emit(&hdr, sizeof hdr);
  column* columns[] = {&blocks_, &txs_, &sigs_, &payload_};
  for (unsigned s = 0; s < 4; ++s) {
    pad_to(hdr.section_offset[s]);
    copy_column(*columns[s]);
  }
  pad_to(hdr.section_offset[kSecDictOffsets]);
  emit(dict_offsets.data(), dict_offsets.size() * 8);
  pad_to(hdr.section_offset[kSecDictBytes]);
  emit(dict_bytes.data(), dict_bytes.size());

  file_footer footer;
  footer.checksum = checksum;
  std::memcpy(footer.magic, kFooterMagic, 8);
  if (std::fwrite(&footer, 1, sizeof footer, out) != sizeof footer ||
      std::fflush(out) != 0) {
    std::fclose(out);
    throw corpus_error{"corpus_writer: write failed on '" + path_ + "'"};
  }
  std::fclose(out);
  written += sizeof footer;

  finished_ = true;
  for (column* col : {&blocks_, &txs_, &sigs_, &payload_}) {
    std::fclose(col->file);
    col->file = nullptr;
    std::error_code ec;
    std::filesystem::remove(col->path, ec);
  }
  return written;
}

}  // namespace leishen::corpus
