#include "corpus/corpus_block_source.h"

#include <algorithm>

namespace leishen::corpus {

corpus_block_source::corpus_block_source(const corpus_reader& reader,
                                         std::uint64_t begin_block,
                                         std::uint64_t end_block,
                                         corpus_source_options options)
    : reader_{&reader},
      options_{options},
      begin_{begin_block},
      end_{std::min(end_block, reader.block_count())},
      cursor_{begin_block},
      last_evict_{begin_block} {}

void corpus_block_source::skip_to_block(std::uint64_t last_processed_number) {
  if (last_processed_number == 0) return;
  const std::uint64_t at = reader_->first_block_after(last_processed_number);
  if (at <= cursor_) return;  // checkpoint predates this range: nothing to do
  cursor_ = std::min(at, end_);
  last_evict_ = cursor_;
  // Link the first emission to the block the checkpoint recorded last, the
  // same hash a full re-emission would have carried there.
  last_hash_ = service::block_link_hash(last_processed_number);
}

std::optional<service::block> corpus_block_source::next() {
  if (cursor_ >= end_) return std::nullopt;
  const block_rec& blk = reader_->block(cursor_);

  service::block b;
  b.number = blk.number;
  b.timestamp = blk.timestamp;
  b.hash = service::block_link_hash(b.number);
  b.parent_hash = last_hash_;
  b.receipts.resize(blk.tx_count);
  for (std::uint32_t i = 0; i < blk.tx_count; ++i) {
    const std::uint64_t t = blk.first_tx + i;
    const bool full = !options_.prefilter_skip_payload ||
                      reader_->tx_may_be_flash_loan(t);
    reader_->materialize_tx(t, blk.number, b.receipts[i], full);
  }
  last_hash_ = b.hash;
  ++cursor_;
  // Evict only this shard's consumed window: a global prefix would drop
  // pages slower shards in earlier block ranges are still reading.
  if (options_.evict_every_blocks != 0 &&
      cursor_ - last_evict_ >= options_.evict_every_blocks) {
    reader_->evict_block_range(last_evict_, cursor_);
    last_evict_ = cursor_;
  }
  return b;
}

}  // namespace leishen::corpus
