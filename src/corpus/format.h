// The .lsc columnar receipt-corpus format (DESIGN.md §13).
//
// One file, five column-family sections behind a versioned header, closed
// by a checksummed footer:
//
//   [file_header]
//   [blocks]   block_rec[block_count]      — block number/timestamp + tx span
//   [txs]      tx_rec[tx_count]            — per-tx metadata + column offsets
//   [sigs]     u32[event_count]            — packed (dict id << 2 | kind)
//   [payload]  bytes                       — variable-length event bodies
//   [dict]     u64 offsets + string bytes  — the string dictionary
//   [file_footer]                          — FNV-1a over everything above
//
// The signature column is the reason the layout exists: the Table II
// prefilter verdict is a pure function of (receipt.success, the (kind,
// name) pair of every trace event), so a reader can reject ~99% of
// transactions by comparing u32 signature words against the three trigger
// ids it resolved against the dictionary once — no payload decode, no
// allocation, no string compare. Only prefilter survivors pay for
// materializing their trace from the payload section.
//
// All integers are little-endian, fixed-width, written with the exact
// in-memory layout of the structs below (standard-layout, no padding holes
// other than the explicit reserved fields); sections are 16-byte aligned so
// the mmap'd arrays are directly addressable.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace leishen::corpus {

static_assert(std::endian::native == std::endian::little,
              "the .lsc format is little-endian on disk and read in place");

/// Any structural defect of a corpus file: truncation, checksum mismatch,
/// version skew, malformed section table, empty corpus. The reader throws
/// this from open so a bad file can never reach the scan pipeline.
class corpus_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kCorpusMagic[8] = {'L', 'S', 'C', 'O', 'R', 'P', '0', '1'};
inline constexpr char kFooterMagic[8] = {'L', 'S', 'C', 'E', 'N', 'D', '0', '1'};
inline constexpr std::uint32_t kCorpusVersion = 1;
inline constexpr std::size_t kSectionAlign = 16;

/// Section index into file_header::section_offset/section_bytes.
enum section : unsigned {
  kSecBlocks = 0,
  kSecTxs = 1,
  kSecSigs = 2,
  kSecPayload = 3,
  kSecDictOffsets = 4,  // u64[dict_count + 1], offsets into dict bytes
  kSecDictBytes = 5,
  kSectionCount = 6,
};

struct file_header {
  char magic[8];
  std::uint32_t version = kCorpusVersion;
  std::uint32_t header_bytes = 0;  // sizeof(file_header) at write time
  std::uint64_t block_count = 0;
  std::uint64_t tx_count = 0;
  std::uint64_t event_count = 0;
  std::uint64_t dict_count = 0;
  std::uint64_t section_offset[kSectionCount] = {};  // absolute file offsets
  std::uint64_t section_bytes[kSectionCount] = {};
};
static_assert(sizeof(file_header) ==
              8 + 4 + 4 + 4 * 8 + 2 * kSectionCount * 8);

struct file_footer {
  std::uint64_t checksum = 0;  // FNV-1a 64 over bytes [0, filesize - 16)
  char magic[8];
};
static_assert(sizeof(file_footer) == 16);

/// One block: its identity and the contiguous tx_rec span it owns.
struct block_rec {
  std::uint64_t number = 0;
  std::int64_t timestamp = 0;  // first receipt's timestamp (= block time)
  std::uint64_t first_tx = 0;
  std::uint32_t tx_count = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(block_rec) == 32);

/// One transaction: everything the header-only paths need (identity,
/// success, parties, interned description/revert strings) plus the spans of
/// its events in the signature and payload columns.
struct tx_rec {
  std::uint64_t tx_index = 0;
  std::int64_t timestamp = 0;
  std::uint64_t first_event = 0;     // index into the signature column
  std::uint64_t payload_offset = 0;  // byte offset into the payload section
  std::uint32_t event_count = 0;
  std::uint32_t desc_sid = 0;        // dictionary ids
  std::uint32_t revert_sid = 0;
  std::uint8_t success = 0;
  std::uint8_t reserved[3] = {};
  std::uint8_t from[20] = {};
  std::uint8_t to[20] = {};
};
static_assert(sizeof(tx_rec) == 88);

/// Signature word: the trace_event kind in the low 2 bits, the dictionary
/// id of its name (call method / log name; 0 for internal transfers, which
/// have no name) above. The prefilter compares whole words.
enum sig_kind : std::uint32_t {
  kSigCall = 0,
  kSigInternal = 1,
  kSigLog = 2,
};
inline constexpr std::uint32_t pack_sig(std::uint32_t dict_id,
                                        sig_kind kind) noexcept {
  return (dict_id << 2) | static_cast<std::uint32_t>(kind);
}
inline constexpr sig_kind sig_kind_of(std::uint32_t word) noexcept {
  return static_cast<sig_kind>(word & 3u);
}
inline constexpr std::uint32_t sig_dict_id(std::uint32_t word) noexcept {
  return word >> 2;
}
/// A signature word no real event can carry (needs dictionary id 2^30 - 1;
/// the writer refuses dictionaries that large). The reader uses it for
/// trigger names absent from a corpus's dictionary.
inline constexpr std::uint32_t kSigNever = 0xFFFFFFFFu;
/// Dictionary capacity that keeps kSigNever unreachable.
inline constexpr std::uint64_t kMaxDictEntries = (1u << 30) - 1;

/// Payload log-event presence flags (which optional fields follow).
enum log_flags : std::uint8_t {
  kLogAddr0 = 1u << 0,
  kLogAddr1 = 1u << 1,
  kLogAddr2 = 1u << 2,
  kLogAmount0 = 1u << 3,
  kLogAmount1 = 1u << 4,
  kLogAmount2 = 1u << 5,
  kLogAmount3 = 1u << 6,
};

/// FNV-1a 64, the same construction the checkpoint files use. Streamable:
/// feed chunks in file order starting from `kFnvOffsetBasis`.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace leishen::corpus
