// Serial view-based scan over an mmap'd corpus — the reference backfill
// path and the honest hot-path number: no queues, no threads, one scratch
// receipt, the prefilter answered from the packed signature column.
//
// Incidents come out as `service::monitor_incident`s (block number
// attached), bit-identical to what a monitor fleet over the same corpus
// range fans into its store — which is exactly the comparison
// bench_backfill and the corpus tests make.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scanner.h"
#include "corpus/corpus_reader.h"
#include "service/incident_sink.h"

namespace leishen::corpus {

struct corpus_scan_options {
  /// Evict consumed column prefixes every N blocks (0 = never). The RSS
  /// ceiling of a long scan is proportional to this window.
  std::uint64_t evict_every_blocks = 8192;
};

struct corpus_scan_result {
  core::scan_stats stats;
  std::vector<service::monitor_incident> incidents;
  std::uint64_t blocks = 0;
  std::uint64_t transactions = 0;
};

/// Scan corpus blocks [begin_block, end_block) (block indexes, not
/// numbers; end is clamped) through `scanner`. Transactions the packed
/// prefilter rejects are never materialized; survivors are decoded into one
/// reused scratch receipt and run through the full pipeline. With the
/// scanner's prefilter disabled every transaction is materialized instead
/// (the corpus verdict would go unused), so results match either way.
corpus_scan_result scan_corpus(const corpus_reader& reader,
                               const core::scanner& scanner,
                               std::uint64_t begin_block,
                               std::uint64_t end_block,
                               const corpus_scan_options& options = {});

}  // namespace leishen::corpus
