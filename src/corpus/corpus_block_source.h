// A `service::block_source` over a corpus block range: the bridge that
// lets the streaming monitor (and therefore the sharded fleet) backfill an
// mmap'd history through the exact ingestion path live blocks take —
// linkage checks, checkpoints, reorg journal, resume, all unchanged.
//
// Linkage mirrors `simulated_block_source`: hash = block_link_hash(number),
// parent = previously emitted hash (0 for the first emission), so per-shard
// checkpoints written against a corpus source resume against a re-created
// one. `skip_to_block` is the resume fast-path: instead of re-emitting the
// processed prefix for the monitor to skip block by block, the source
// starts at the first block past the checkpoint with the parent hash the
// checkpoint expects — prefix decode cost drops to a binary search.
//
// Transactions the packed-signature prefilter rejects are materialized
// header-only (empty trace — allocation-free): the monitor's scanner
// prefilter reaches the identical verdict from the identical fields, so
// stats and incidents are bit-identical to full decode. Requires the
// monitor's prefilter to be ON; pass `prefilter_skip_payload = false` when
// scanning with the prefilter disabled.
#pragma once

#include <cstdint>

#include "corpus/corpus_reader.h"
#include "service/block_source.h"

namespace leishen::corpus {

struct corpus_source_options {
  /// Decode only the tx header for prefilter-rejected transactions. Sound
  /// only when the consuming scanner's prefilter is enabled.
  bool prefilter_skip_payload = true;
  /// Evict consumed column prefixes every N emitted blocks (0 = never).
  std::uint64_t evict_every_blocks = 8192;
};

class corpus_block_source final : public service::block_source {
 public:
  /// Emits corpus blocks [begin_block, end_block) (block indexes; end is
  /// clamped). The reader must outlive the source.
  corpus_block_source(const corpus_reader& reader, std::uint64_t begin_block,
                      std::uint64_t end_block,
                      corpus_source_options options = {});

  std::optional<service::block> next() override;

  /// Resume fast-forward: start emission at the first block with number >
  /// `last_processed_number`, linked as if the prefix had been emitted
  /// (parent = block_link_hash(last_processed_number)). Call before the
  /// first next(); a no-op for number 0 (fresh start).
  void skip_to_block(std::uint64_t last_processed_number);

  [[nodiscard]] std::uint64_t remaining_blocks() const noexcept {
    return end_ - cursor_;
  }

 private:
  const corpus_reader* reader_;
  corpus_source_options options_;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t last_hash_ = 0;
  std::uint64_t last_evict_ = 0;
};

}  // namespace leishen::corpus
