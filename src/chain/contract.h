// Base class for simulated smart contracts.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "common/address.h"

namespace leishen::chain {

/// Thrown by contract code to abort the enclosing transaction. Mirrors the
/// EVM REVERT opcode: the transaction's state changes are undone atomically.
class revert_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A deployed contract. Instances are owned by the blockchain; all mutable
/// state lives in the journaled world_state (keyed by this contract's
/// address), so contract objects themselves stay immutable after
/// construction and revert semantics are uniform.
class contract {
 public:
  contract(address self, std::string app_name, std::string kind)
      : self_{self}, app_name_{std::move(app_name)}, kind_{std::move(kind)} {}

  contract(const contract&) = delete;
  contract& operator=(const contract&) = delete;
  virtual ~contract() = default;

  [[nodiscard]] const address& addr() const noexcept { return self_; }

  /// Ground-truth application this contract belongs to ("Uniswap", "bZx",
  /// ...). The Etherscan label database exposes only a configurable subset
  /// of these; LeiShen's tagging must recover the rest.
  [[nodiscard]] const std::string& app_name() const noexcept {
    return app_name_;
  }

  /// Human-readable contract kind, e.g. "UniswapV2Pair".
  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }

 private:
  address self_;
  std::string app_name_;
  std::string kind_;
};

}  // namespace leishen::chain
