// Crypto-asset identity.
#pragma once

#include <compare>
#include <functional>
#include <iosfwd>
#include <string>

#include "common/address.h"

namespace leishen::chain {

/// Identifies a crypto asset: either native Ether or an ERC20 token
/// identified by its contract address (paper §II-A).
class asset {
 public:
  constexpr asset() noexcept : contract_{} {}  // default: native ETH

  static constexpr asset ether() noexcept { return asset{}; }
  static constexpr asset token(address contract_addr) noexcept {
    asset a;
    a.contract_ = contract_addr;
    return a;
  }

  [[nodiscard]] constexpr bool is_ether() const noexcept {
    return contract_.is_zero();
  }
  [[nodiscard]] constexpr const address& contract_address() const noexcept {
    return contract_;
  }

  friend constexpr bool operator==(const asset&, const asset&) noexcept =
      default;
  friend constexpr std::strong_ordering operator<=>(const asset&,
                                                    const asset&) noexcept =
      default;

 private:
  address contract_;
};

struct asset_hash {
  std::size_t operator()(const asset& a) const noexcept {
    return address_hash{}(a.contract_address());
  }
};

}  // namespace leishen::chain
