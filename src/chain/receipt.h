// Transaction receipts: everything LeiShen consumes per transaction.
#pragma once

#include <cstdint>
#include <string>

#include "chain/trace.h"

namespace leishen::chain {

struct tx_receipt {
  std::uint64_t tx_index = 0;  // stands in for the transaction hash
  address from;                // transaction origin (EOA)
  address to;                  // first contract invoked (attack contract etc.)
  std::string description;     // human label for reports
  std::uint64_t block_number = 0;
  std::int64_t timestamp = 0;
  bool success = false;
  std::string revert_reason;
  trace events;  // ordered calls + internal txs + event logs
};

}  // namespace leishen::chain
