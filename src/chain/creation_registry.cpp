#include "chain/creation_registry.h"

#include <stdexcept>

namespace leishen::chain {

void creation_registry::record(const address& creator,
                               const address& created) {
  const auto [it, inserted] = parent_.emplace(created, creator);
  if (!inserted) {
    throw std::logic_error("creation_registry: account already has a creator");
  }
  children_[creator].push_back(created);
}

std::optional<address> creation_registry::creator_of(const address& a) const {
  const auto it = parent_.find(a);
  if (it == parent_.end()) return std::nullopt;
  return it->second;
}

const std::vector<address>& creation_registry::children_of(
    const address& a) const {
  static const std::vector<address> kEmpty;
  const auto it = children_.find(a);
  return it == children_.end() ? kEmpty : it->second;
}

address creation_registry::root_of(const address& a) const {
  address cur = a;
  for (;;) {
    const auto it = parent_.find(cur);
    if (it == parent_.end()) return cur;
    cur = it->second;
  }
}

std::vector<address> creation_registry::tree_of(const address& a) const {
  std::vector<address> out;
  std::vector<address> stack{root_of(a)};
  while (!stack.empty()) {
    const address cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (const address& c : children_of(cur)) stack.push_back(c);
  }
  return out;
}

}  // namespace leishen::chain
