#include "chain/world_state.h"

namespace leishen::chain {
namespace {

u256 fold_address(const address& a) noexcept {
  // Pack the 20 address bytes into the low 160 bits of a u256.
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;
  std::uint64_t w2 = 0;
  const auto& b = a.bytes();
  for (int i = 0; i < 8; ++i) w0 |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  for (int i = 0; i < 8; ++i)
    w1 |= static_cast<std::uint64_t>(b[i + 8]) << (8 * i);
  for (int i = 0; i < 4; ++i)
    w2 |= static_cast<std::uint64_t>(b[i + 16]) << (8 * i);
  return u256{w0, w1, w2, 0};
}

u256 mix_slot(const u256& a, const u256& b) noexcept {
  // A cheap stand-in for keccak(slot . key): XOR-rotate mixing is enough for
  // a simulator where adversarial collisions are not a concern.
  u256 r = a;
  r = (r << 64) | (r >> 192);
  return r | (b << 1) | (b >> 255) | ((a | b) << 128);
}

}  // namespace

u256 pack_address(const address& a) noexcept { return fold_address(a); }

address unpack_address(const u256& word) noexcept {
  std::array<std::uint8_t, address::kSize> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(word.limb(0) >> (8 * i));
    bytes[static_cast<std::size_t>(i + 8)] =
        static_cast<std::uint8_t>(word.limb(1) >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i + 16)] =
        static_cast<std::uint8_t>(word.limb(2) >> (8 * i));
  }
  return address{bytes};
}

u256 map_slot(std::uint64_t base_slot, const address& subject) {
  return mix_slot(u256{base_slot} + u256{0x51aULL << 32},
                  fold_address(subject));
}

u256 map_slot2(std::uint64_t base_slot, const address& a, const address& b) {
  return mix_slot(map_slot(base_slot, a), fold_address(b) + u256{1});
}

account_record& world_state::account(const address& a) {
  return accounts_[a];
}

const account_record* world_state::find_account(const address& a) const {
  const auto it = accounts_.find(a);
  return it == accounts_.end() ? nullptr : &it->second;
}

u256 world_state::eth_balance(const address& a) const {
  const auto* rec = find_account(a);
  return rec ? rec->eth_balance : u256{};
}

void world_state::set_eth_balance(const address& a, const u256& v) {
  account_record& rec = account(a);
  journal_.push_back({.k = journal_entry::kind::balance_write,
                      .account_addr = a,
                      .old_value = rec.eth_balance});
  rec.eth_balance = v;
}

void world_state::set_kind(const address& a, account_kind k) {
  account_record& rec = account(a);
  journal_.push_back({.k = journal_entry::kind::flag_write,
                      .account_addr = a,
                      .old_kind = rec.kind,
                      .old_destroyed = rec.destroyed});
  rec.kind = k;
}

void world_state::set_destroyed(const address& a, bool destroyed) {
  account_record& rec = account(a);
  journal_.push_back({.k = journal_entry::kind::flag_write,
                      .account_addr = a,
                      .old_kind = rec.kind,
                      .old_destroyed = rec.destroyed});
  rec.destroyed = destroyed;
}

u256 world_state::load(const address& contract, const u256& slot) const {
  const auto it = storage_.find(storage_key{contract, slot});
  return it == storage_.end() ? u256{} : it->second;
}

void world_state::store(const address& contract, const u256& slot,
                        const u256& value) {
  const storage_key key{contract, slot};
  const auto it = storage_.find(key);
  journal_entry e{.k = journal_entry::kind::storage_write, .skey = key};
  if (it != storage_.end()) {
    e.old_value = it->second;
    e.had_value = true;
  }
  journal_.push_back(e);
  storage_[key] = value;
}

void world_state::revert_to(snapshot s) {
  while (journal_.size() > s) {
    const journal_entry& e = journal_.back();
    switch (e.k) {
      case journal_entry::kind::storage_write:
        if (e.had_value) {
          storage_[e.skey] = e.old_value;
        } else {
          storage_.erase(e.skey);
        }
        break;
      case journal_entry::kind::balance_write:
        accounts_[e.account_addr].eth_balance = e.old_value;
        break;
      case journal_entry::kind::flag_write:
        accounts_[e.account_addr].kind = e.old_kind;
        accounts_[e.account_addr].destroyed = e.old_destroyed;
        break;
    }
    journal_.pop_back();
  }
}

}  // namespace leishen::chain
