// Transaction execution context.
//
// Carries the per-transaction call stack, the ordered trace (calls, internal
// transactions, event logs — the happened-before record of paper §V-A) and
// journaled access to world state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/contract.h"
#include "chain/trace.h"
#include "chain/world_state.h"

namespace leishen::chain {

class blockchain;

class context {
 public:
  context(blockchain& bc, world_state& state, address origin,
          std::uint64_t block_number, std::int64_t timestamp);

  context(const context&) = delete;
  context& operator=(const context&) = delete;

  // -- environment ----------------------------------------------------------
  [[nodiscard]] blockchain& chain() noexcept { return bc_; }
  [[nodiscard]] const address& origin() const noexcept { return origin_; }
  [[nodiscard]] std::uint64_t block_number() const noexcept { return block_; }
  [[nodiscard]] std::int64_t timestamp() const noexcept { return timestamp_; }

  /// msg.sender of the currently-executing contract method: the callee of
  /// the frame below the top (the transaction origin at depth 0).
  [[nodiscard]] address sender() const noexcept;
  /// The currently-executing contract.
  [[nodiscard]] address self() const noexcept;
  [[nodiscard]] int depth() const noexcept {
    return static_cast<int>(frames_.size());
  }

  // -- state access ---------------------------------------------------------
  [[nodiscard]] u256 load(const address& contract_addr,
                          const u256& slot) const {
    return state_.load(contract_addr, slot);
  }
  void store(const address& contract_addr, const u256& slot,
             const u256& value) {
    state_.store(contract_addr, slot, value);
  }
  [[nodiscard]] world_state& state() noexcept { return state_; }

  /// Move Ether; records an internal transaction in the trace. Throws
  /// revert_error on insufficient balance.
  void transfer_eth(const address& from, const address& to,
                    const u256& amount);

  /// Append an event log to the trace.
  void emit_log(event_log log);

  /// Emit the canonical ERC20 Transfer event.
  void emit_transfer(const address& token, const address& from,
                     const address& to, const u256& amount);

  /// Abort the transaction unless `cond` holds.
  static void require(bool cond, const char* what) {
    if (!cond) throw revert_error(what);
  }

  [[nodiscard]] const trace& events() const noexcept { return trace_; }

  // -- revert support (used by blockchain::execute) --------------------------
  struct checkpoint {
    world_state::snapshot state;
    std::size_t trace_size;
  };
  [[nodiscard]] checkpoint save() const noexcept {
    return {state_.take_snapshot(), trace_.size()};
  }
  void rollback(const checkpoint& cp);

  /// RAII frame for a contract method invocation. Construct as the first
  /// statement of every public contract method.
  class call_guard {
   public:
    call_guard(context& ctx, const address& callee, std::string method);
    call_guard(const call_guard&) = delete;
    call_guard& operator=(const call_guard&) = delete;
    ~call_guard();

   private:
    context& ctx_;
  };

 private:
  struct frame {
    address caller;
    address callee;
  };

  blockchain& bc_;
  world_state& state_;
  address origin_;
  std::uint64_t block_;
  std::int64_t timestamp_;
  std::vector<frame> frames_;
  trace trace_;
};

}  // namespace leishen::chain
