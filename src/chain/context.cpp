#include "chain/context.h"

#include <utility>

namespace leishen::chain {

context::context(blockchain& bc, world_state& state, address origin,
                 std::uint64_t block_number, std::int64_t timestamp)
    : bc_{bc},
      state_{state},
      origin_{origin},
      block_{block_number},
      timestamp_{timestamp} {}

address context::sender() const noexcept {
  if (frames_.empty()) return origin_;
  return frames_.back().caller;
}

address context::self() const noexcept {
  if (frames_.empty()) return origin_;
  return frames_.back().callee;
}

void context::transfer_eth(const address& from, const address& to,
                           const u256& amount) {
  if (amount.is_zero()) return;
  const u256 bal = state_.eth_balance(from);
  require(bal >= amount, "insufficient ETH balance");
  state_.set_eth_balance(from, bal - amount);
  state_.set_eth_balance(to, state_.eth_balance(to) + amount);
  trace_.push_back(internal_tx{from, to, amount});
}

void context::emit_log(event_log log) { trace_.push_back(std::move(log)); }

void context::emit_transfer(const address& token, const address& from,
                            const address& to, const u256& amount) {
  trace_.push_back(event_log{.emitter = token,
                             .name = kTransferEvent,
                             .addr0 = from,
                             .addr1 = to,
                             .amount0 = amount});
}

void context::rollback(const checkpoint& cp) {
  state_.revert_to(cp.state);
  trace_.resize(cp.trace_size);
}

context::call_guard::call_guard(context& ctx, const address& callee,
                                std::string method)
    : ctx_{ctx} {
  const address caller = ctx.frames_.empty() ? ctx.origin_
                                             : ctx.frames_.back().callee;
  ctx.frames_.push_back(frame{caller, callee});
  ctx.trace_.push_back(call_record{.caller = caller,
                                   .callee = callee,
                                   .method = std::move(method),
                                   .depth = ctx.depth()});
}

context::call_guard::~call_guard() { ctx_.frames_.pop_back(); }

}  // namespace leishen::chain
