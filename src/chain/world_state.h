// Journaled Ethereum world state.
//
// All persistent contract state (ERC20 balances, AMM reserves, vault shares,
// ...) lives in a generic per-address key/value store, mirroring EVM storage.
// A write journal makes transaction atomicity (the property that secures
// flash loans) a first-class, testable operation: snapshot before the
// transaction body, revert on failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/address.h"
#include "common/u256.h"

namespace leishen::chain {

enum class account_kind : std::uint8_t { user, contract };

struct account_record {
  account_kind kind = account_kind::user;
  u256 eth_balance;
  bool destroyed = false;  // set by selfdestruct; history remains replayable
};

/// A storage cell key: (contract address, slot). Mapping-typed Solidity
/// state (balances[holder]) is modelled by deriving the slot from a base
/// slot id and the subject address, like keccak(slot . key) on mainnet.
struct storage_key {
  address contract;
  u256 slot;

  friend bool operator==(const storage_key&, const storage_key&) = default;
};

struct storage_key_hash {
  std::size_t operator()(const storage_key& k) const noexcept {
    return address_hash{}(k.contract) * 1000003U ^ u256_hash{}(k.slot);
  }
};

/// Derive the slot for mapping entry `base[subject]`.
[[nodiscard]] u256 map_slot(std::uint64_t base_slot, const address& subject);

/// Derive the slot for a two-level mapping `base[a][b]` (e.g. allowances).
[[nodiscard]] u256 map_slot2(std::uint64_t base_slot, const address& a,
                             const address& b);

/// Pack a 160-bit address into the low bits of a storage word (and back) —
/// how address-valued state (ERC721 owners, approvals) is stored.
[[nodiscard]] u256 pack_address(const address& a) noexcept;
[[nodiscard]] address unpack_address(const u256& word) noexcept;

class world_state {
 public:
  world_state() = default;

  // Non-copyable: the journal refers into the maps.
  world_state(const world_state&) = delete;
  world_state& operator=(const world_state&) = delete;

  // -- accounts -------------------------------------------------------------
  /// Creates the account if absent.
  account_record& account(const address& a);
  [[nodiscard]] const account_record* find_account(const address& a) const;
  [[nodiscard]] u256 eth_balance(const address& a) const;
  void set_eth_balance(const address& a, const u256& v);
  void set_kind(const address& a, account_kind k);
  void set_destroyed(const address& a, bool destroyed);

  // -- storage --------------------------------------------------------------
  [[nodiscard]] u256 load(const address& contract, const u256& slot) const;
  void store(const address& contract, const u256& slot, const u256& value);

  // -- journaling -----------------------------------------------------------
  using snapshot = std::size_t;
  [[nodiscard]] snapshot take_snapshot() const noexcept {
    return journal_.size();
  }
  /// Undo every mutation made after `s`, in reverse order.
  void revert_to(snapshot s);
  /// Forget undo records older than the current tip (commit point); cheap.
  void commit() { journal_.clear(); }

  [[nodiscard]] std::size_t journal_size() const noexcept {
    return journal_.size();
  }

 private:
  struct journal_entry {
    enum class kind : std::uint8_t { storage_write, balance_write, flag_write };
    kind k;
    // storage_write
    storage_key skey{};
    // balance_write / flag_write subject
    address account_addr{};
    u256 old_value{};
    bool had_value = false;  // storage cell existed before the write
    account_kind old_kind = account_kind::user;
    bool old_destroyed = false;
  };

  std::unordered_map<address, account_record, address_hash> accounts_;
  std::unordered_map<storage_key, u256, storage_key_hash> storage_;
  std::vector<journal_entry> journal_;
};

}  // namespace leishen::chain
