// Account creation relationships.
//
// The paper's account-tagging approach (§V-B1) rests on contract creation
// edges (the XBlock-ETH dataset on mainnet). The simulator records every
// deployment here: EOA -> contract and contract -> contract edges form the
// forests that tagging walks.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/address.h"

namespace leishen::chain {

class creation_registry {
 public:
  /// Record that `creator` deployed `created`. Each account has at most one
  /// creator; re-recording is an error.
  void record(const address& creator, const address& created);

  [[nodiscard]] std::optional<address> creator_of(const address& a) const;
  [[nodiscard]] const std::vector<address>& children_of(
      const address& a) const;

  /// Walk up to the root of `a`'s creation tree (an EOA on mainnet).
  [[nodiscard]] address root_of(const address& a) const;

  /// Every account in the same creation tree as `a` (including `a`).
  [[nodiscard]] std::vector<address> tree_of(const address& a) const;

  [[nodiscard]] std::size_t edge_count() const noexcept {
    return parent_.size();
  }

 private:
  std::unordered_map<address, address, address_hash> parent_;
  std::unordered_map<address, std::vector<address>, address_hash> children_;
};

}  // namespace leishen::chain
