// The simulated Ethereum blockchain.
//
// Owns the world state, the deployed contract objects, creation
// relationships, blocks and transaction receipts. Transactions execute
// atomically: a revert anywhere in the call tree undoes all state changes,
// which is exactly the property that makes flash loans safe for lenders
// (paper §I).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/context.h"
#include "chain/contract.h"
#include "chain/creation_registry.h"
#include "chain/receipt.h"
#include "chain/world_state.h"
#include "common/sim_time.h"

namespace leishen::chain {

class blockchain {
 public:
  /// Starts at the given block number; timestamps follow block_timestamp().
  explicit blockchain(std::uint64_t start_block = 9'000'000);

  blockchain(const blockchain&) = delete;
  blockchain& operator=(const blockchain&) = delete;

  // -- state ------------------------------------------------------------------
  [[nodiscard]] world_state& state() noexcept { return state_; }
  [[nodiscard]] const world_state& state() const noexcept { return state_; }

  // -- accounts & deployment ---------------------------------------------------
  /// Create a fresh externally-owned account, optionally bound to an
  /// application name (ground truth for the label database).
  address create_user_account(std::string app_name = "");

  /// Credit Ether out of thin air (test/scenario setup only).
  void fund_eth(const address& a, const u256& amount);

  /// Deploy a contract of type T. T's constructor must accept
  /// (blockchain&, address self, Args...). Records the creation edge
  /// deployer -> contract.
  template <typename T, typename... Args>
  T& deploy(const address& deployer, Args&&... args) {
    const address self = next_address();
    auto owned = std::make_unique<T>(*this, self, std::forward<Args>(args)...);
    T& ref = *owned;
    register_contract(deployer, std::move(owned));
    return ref;
  }

  [[nodiscard]] contract* find(const address& a) const;
  template <typename T>
  [[nodiscard]] T* find_as(const address& a) const {
    return dynamic_cast<T*>(find(a));
  }

  /// Ground-truth application of an account ("" when unknown/none): contract
  /// app names plus EOA app bindings. The Etherscan label DB is seeded from
  /// a *subset* of this.
  [[nodiscard]] std::string app_of(const address& a) const;

  [[nodiscard]] const creation_registry& creations() const noexcept {
    return creations_;
  }
  [[nodiscard]] const std::vector<const contract*>& contracts()
      const noexcept {
    return contract_index_;
  }

  // -- blocks -------------------------------------------------------------------
  [[nodiscard]] std::uint64_t block_number() const noexcept { return block_; }
  [[nodiscard]] std::int64_t timestamp() const noexcept {
    return block_timestamp(block_);
  }
  void advance_blocks(std::uint64_t n) { block_ += n; }
  /// Jump forward so that the chain time is at least `unix_seconds`.
  void advance_to_time(std::int64_t unix_seconds);

  // -- transactions ----------------------------------------------------------------
  /// Execute `body` as a transaction from `from`. On revert_error the state
  /// is rolled back and the receipt is marked failed (with the partial trace
  /// retained for debugging). Other exceptions propagate: they indicate
  /// simulator bugs, not contract-level reverts.
  const tx_receipt& execute(const address& from, std::string description,
                            const std::function<void(context&)>& body);

  [[nodiscard]] const std::vector<tx_receipt>& receipts() const noexcept {
    return receipts_;
  }
  [[nodiscard]] const tx_receipt& receipt(std::uint64_t tx_index) const {
    return receipts_.at(tx_index);
  }

 private:
  address next_address();
  void register_contract(const address& deployer,
                         std::unique_ptr<contract> c);

  world_state state_;
  creation_registry creations_;
  std::unordered_map<address, std::unique_ptr<contract>, address_hash>
      contracts_;
  std::vector<const contract*> contract_index_;  // deployment order
  std::unordered_map<address, std::string, address_hash> eoa_apps_;
  std::vector<tx_receipt> receipts_;
  std::uint64_t block_;
  std::uint64_t address_counter_ = 1;
};

}  // namespace leishen::chain
