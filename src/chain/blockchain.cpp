#include "chain/blockchain.h"

#include <utility>

namespace leishen::chain {

blockchain::blockchain(std::uint64_t start_block) : block_{start_block} {}

address blockchain::next_address() {
  return address::from_seed(0xc0ffee00ULL + address_counter_++);
}

address blockchain::create_user_account(std::string app_name) {
  const address a = next_address();
  state_.account(a).kind = account_kind::user;
  if (!app_name.empty()) eoa_apps_[a] = std::move(app_name);
  return a;
}

void blockchain::fund_eth(const address& a, const u256& amount) {
  account_record& rec = state_.account(a);
  rec.eth_balance += amount;
  state_.commit();
}

void blockchain::register_contract(const address& deployer,
                                   std::unique_ptr<contract> c) {
  const address self = c->addr();
  state_.account(self).kind = account_kind::contract;
  creations_.record(deployer, self);
  contract_index_.push_back(c.get());
  contracts_.emplace(self, std::move(c));
}

contract* blockchain::find(const address& a) const {
  const auto it = contracts_.find(a);
  return it == contracts_.end() ? nullptr : it->second.get();
}

std::string blockchain::app_of(const address& a) const {
  if (const contract* c = find(a)) return c->app_name();
  const auto it = eoa_apps_.find(a);
  return it == eoa_apps_.end() ? std::string{} : it->second;
}

void blockchain::advance_to_time(std::int64_t unix_seconds) {
  const std::uint64_t target = block_at_time(unix_seconds);
  if (target > block_) block_ = target;
}

const tx_receipt& blockchain::execute(
    const address& from, std::string description,
    const std::function<void(context&)>& body) {
  context ctx{*this, state_, from, block_, timestamp()};
  const context::checkpoint cp = ctx.save();
  tx_receipt rec;
  rec.tx_index = receipts_.size();
  rec.from = from;
  rec.description = std::move(description);
  rec.block_number = block_;
  rec.timestamp = timestamp();
  try {
    body(ctx);
    rec.success = true;
    state_.commit();
    rec.events = ctx.events();
  } catch (const revert_error& e) {
    rec.success = false;
    rec.revert_reason = e.what();
    rec.events = ctx.events();  // keep the partial trace for debugging
    ctx.rollback(cp);
  }
  // Record the first contract invoked, if any.
  for (const trace_event& ev : rec.events) {
    if (const auto* call = std::get_if<call_record>(&ev)) {
      rec.to = call->callee;
      break;
    }
  }
  receipts_.push_back(std::move(rec));
  return receipts_.back();
}

}  // namespace leishen::chain
