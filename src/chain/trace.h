// Execution trace events.
//
// The paper's key infrastructure fix (§V-A) is a modified Geth that records
// the happened-before relationship between internal transactions (Ether
// transfers) and ERC20 Transfer event logs. Our execution context natively
// appends every call, internal transaction and event log to one ordered
// vector, so that ordering is exact by construction.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "chain/asset.h"
#include "common/address.h"
#include "common/u256.h"

namespace leishen::chain {

/// A contract (or EOA->contract) call, recorded when a contract method is
/// entered. Used by flash loan identification (paper Table II).
struct call_record {
  address caller;
  address callee;
  std::string method;  // e.g. "swap", "uniswapV2Call", "flashLoan"
  int depth = 0;
};

/// An Ether value transfer carried by an internal transaction.
struct internal_tx {
  address from;
  address to;
  u256 amount;
};

/// A contract event log. ERC20 transfers use name == "Transfer" with
/// addr0 = from, addr1 = to, amount0 = value. DeFi protocols emit their own
/// events (e.g. "FlashLoan", "LogOperate", "Swap", "TradeExecuted"); the
/// explorer baseline consumes those. Up to three indexed addresses and four
/// data words cover every mainnet event we model.
struct event_log {
  address emitter;
  std::string name;
  address addr0;
  address addr1;
  address addr2;
  u256 amount0;
  u256 amount1;
  u256 amount2;
  u256 amount3;
};

/// Name of the ERC20 transfer event.
inline constexpr const char* kTransferEvent = "Transfer";

using trace_event = std::variant<call_record, internal_tx, event_log>;

/// An account-level asset transfer (paper Fig. 6): the unit the whole
/// LeiShen pipeline operates on.
struct transfer {
  address sender;
  address receiver;
  u256 amount;
  asset token;

  friend bool operator==(const transfer&, const transfer&) = default;
};

using trace = std::vector<trace_event>;
using transfer_list = std::vector<transfer>;

}  // namespace leishen::chain
