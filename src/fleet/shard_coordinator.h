// Self-healing sharded monitor fleet: N monitor_service instances over
// disjoint block ranges, fanning incidents into one shared incident_store,
// supervised by a coordinator that detects shard failure and hands work
// off to survivors.
//
// Partitioning (`plan_shards`) slices the receipt log into contiguous
// block ranges of roughly equal receipt counts, never splitting a block —
// a block is the unit the monitor ingests, checkpoints and rolls back, so
// splitting one would break all three. The unit of supervised work is the
// *segment*: a block range with its own durable feed (`seg-<id>.jsonl`)
// and v3 checkpoint (`seg-<id>.ckpt`). The fleet starts with one segment
// per planned shard; failure handoff splits the unfinished remainder of a
// dead shard's segment into new segments, so the set grows over a run.
// Each of the fixed *slots* (= planned shard count) runs one segment at a
// time through its own stack: metrics registry (resume ADDS the
// checkpointed counter snapshot into the registry, so slots must not
// share one), monitor, source over the segment's slice, feed sink, and a
// store_sink into the shared store. The store's canonical (block, tx, id)
// order makes the nondeterministic cross-shard fan-in interleaving
// invisible: a fleet store enumerates bit-identically to a serial
// single-monitor run — including runs with restarts and handoffs.
//
// Supervision (DESIGN.md §14): a heartbeat thread polls each slot's
// monitor (run_state + progress watermark). A failed monitor is joined
// and its segment recovered losslessly — feed truncated to the durable
// checkpoint, the store's overhang for the segment's block range
// retracted, a fresh stack resumed from the checkpoint — with exponential
// backoff, up to `restart_budget` restarts per slot. Past the budget the
// slot's circuit opens: the segment is shrunk to its durable watermark
// (marked done) and the remainder is split into new pending segments for
// the surviving slots. When every slot is dead with work remaining, the
// run fails and `wait()` rethrows.
//
// Durability: `committed_watermark()` walks the segments in block order
// and returns the height up to which the fleet's output is contiguously
// durable. `fleet.ckpt` (v2, FNV-1a checksummed with a `.prev` fallback
// generation) records the plan AND the live segment topology, so a
// killed-and-resumed run replays handoff reassignments instead of
// resharding; a fleet.ckpt that fails validation on both generations
// throws rather than silently starting fresh. With `wal` enabled every
// store mutation is also logged to `state_dir`/wal (see store/wal.h) and
// a crashed fleet host rebuilds its store from the WAL instead of
// replaying every feed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chain/receipt.h"
#include "core/scanner.h"
#include "corpus/corpus_block_source.h"
#include "corpus/corpus_reader.h"
#include "service/metrics.h"
#include "service/monitor_service.h"
#include "store/incident_store.h"
#include "store/store_sink.h"
#include "store/wal.h"

namespace leishen::fleet {

/// One shard's slice of the receipt log: receipt indexes [begin, end) and
/// the block span they cover.
struct shard_range {
  std::size_t begin = 0, end = 0;
  std::uint64_t first_block = 0, last_block = 0;

  friend bool operator==(const shard_range&, const shard_range&) = default;
};

/// Contiguous block-aligned ranges of roughly equal receipt counts. Fewer
/// distinct blocks than shards yields fewer (non-empty) ranges; an empty
/// receipt log yields none.
std::vector<shard_range> plan_shards(
    const std::vector<chain::tx_receipt>& receipts, unsigned shards);

/// A corpus shard: the same tx-index `range` the fleet checkpoint records
/// (so fleet.ckpt is mode-agnostic), plus the block-INDEX span [begin,
/// end) that drives a corpus_block_source.
struct corpus_shard_plan {
  shard_range range;
  std::uint64_t begin_block = 0, end_block = 0;

  friend bool operator==(const corpus_shard_plan&,
                         const corpus_shard_plan&) = default;
};

/// Block-aligned corpus partition of roughly equal transaction counts,
/// planned from the mmap'd block column without materializing anything.
std::vector<corpus_shard_plan> plan_corpus_shards(
    const corpus::corpus_reader& corpus, unsigned shards);

struct fleet_options {
  unsigned shards = 2;
  /// Detection configuration shared by every shard.
  core::scanner_options scan;
  std::size_t queue_capacity = 64;
  /// Per-shard checkpoint cadence in blocks (0 = only on shutdown).
  std::uint64_t checkpoint_every = 4;
  /// Durable state directory (per-segment feeds + checkpoints, fleet.ckpt,
  /// the WAL); empty = in-memory only, resume and failure recovery
  /// unavailable (a shard failure is then fatal to the run).
  std::string state_dir;

  // --- supervision ---
  /// Times one slot's monitor is torn down and restarted from its segment
  /// checkpoint before the slot's circuit opens and its remaining range is
  /// handed off to the surviving slots.
  int restart_budget = 2;
  /// Supervisor poll cadence.
  std::uint64_t heartbeat_interval_ms = 10;
  /// Restart backoff: attempt k waits backoff_base_ms * 2^k.
  std::uint64_t backoff_base_ms = 5;

  // --- durability ---
  /// Log every store mutation to `state_dir`/wal (see store/wal.h); a
  /// resumed fleet then rebuilds the store from the WAL instead of
  /// replaying feeds. Requires a state_dir.
  bool wal = false;
  std::uint64_t wal_fsync_every_n = 1;
  std::uint64_t wal_segment_max_bytes = 1u << 20;
  /// Per-segment feed fsync cadence (0 = OS page cache, the default).
  std::uint64_t feed_fsync_every_n = 0;

  /// Chaos-harness hook, fired by slot `slot`'s worker after each
  /// fully-processed block (may throw simulated_kill). Null in production.
  std::function<void(std::size_t slot, std::uint64_t block)> post_block_hook;
};

/// One slot's entry in the fleet health report.
struct slot_health {
  std::size_t slot = 0;
  std::uint64_t segment = 0;  // segment id being run; 0 = idle
  bool alive = true;          // restart budget not exhausted
  std::string state;          // idle|running|recovering|done|failed|dead
  std::uint64_t progress = 0;
  int restarts = 0;
  std::size_t queue_depth = 0;
};

struct fleet_health {
  bool ready = false;
  std::uint64_t watermark = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t restarts = 0;
  std::uint64_t segments_pending = 0;
  std::uint64_t segments_running = 0;
  std::uint64_t segments_done = 0;
  // WAL counters (all 0 when the WAL is off).
  std::uint64_t wal_appended = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t wal_rotations = 0;
  std::uint64_t wal_lag_records = 0;
  std::vector<slot_health> slots;
};

class shard_coordinator {
 public:
  /// The chain substrate, receipt log and store are borrowed and must
  /// outlive the coordinator. Receipts must be in chain order (the same
  /// precondition simulated_block_source enforces).
  shard_coordinator(const chain::creation_registry& creations,
                    const etherscan::label_db& labels,
                    chain::asset weth_token,
                    const std::vector<chain::tx_receipt>& receipts,
                    store::incident_store& store, fleet_options options);

  /// Backfill mode: shards scan disjoint block ranges of one shared
  /// mmap'd corpus instead of owned receipt copies — per-shard memory is
  /// the eviction window, not the slice. Checkpoint/resume semantics are
  /// identical to receipt mode; a resumed shard fast-forwards its corpus
  /// source past the checkpointed block instead of re-decoding the prefix.
  /// The corpus (like the registry and labels) is borrowed and must
  /// outlive the coordinator.
  shard_coordinator(const chain::creation_registry& creations,
                    const etherscan::label_db& labels,
                    chain::asset weth_token,
                    const corpus::corpus_reader& corpus,
                    store::incident_store& store, fleet_options options);
  ~shard_coordinator();

  shard_coordinator(const shard_coordinator&) = delete;
  shard_coordinator& operator=(const shard_coordinator&) = delete;

  /// Resume a killed fleet from `state_dir`: validates the plan against
  /// fleet.ckpt (falling back to fleet.ckpt.prev when the current file is
  /// torn; throws when BOTH generations fail validation), restores the
  /// segment topology — handoff splits included — rebuilds the store (from
  /// the WAL when present and enabled, else by replaying segment feeds),
  /// and arms per-segment checkpoint resume. Returns false (fresh start)
  /// when no fleet checkpoint exists. Throws std::runtime_error when the
  /// planned shard count or ranges changed. Call before `start`.
  bool resume();

  /// Spawn every slot's monitor and the supervisor. One run per
  /// coordinator.
  void start();

  /// Graceful stop: every slot stops ingesting and drains; pending
  /// segments stay pending (a resume picks them up). Never blocks.
  void request_stop();

  /// Join the supervisor (which joins every monitor), write the fleet
  /// checkpoint, and rethrow the run's fatal error if it had one (a shard
  /// failure the supervision could not absorb).
  void wait();

  void run() {
    start();
    wait();
  }

  [[nodiscard]] const std::vector<shard_range>& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return plan_.size();
  }

  /// Height up to which the fleet's output is contiguously durable: walks
  /// the segments in block order, advancing through fully-durable ones and
  /// stopping inside the first partial one.
  [[nodiscard]] std::uint64_t committed_watermark() const;

  /// One slot's live registry (diagnostics; throws when the slot has no
  /// running stack).
  [[nodiscard]] service::metrics_registry& shard_metrics(std::size_t i);

  /// Sum of every slot's counters, finished segments included
  /// (fleet-level /metrics view).
  [[nodiscard]] std::map<std::string, std::uint64_t> merged_counters() const;

  [[nodiscard]] std::uint64_t incidents_forwarded() const;

  /// Budget-exhaustion handoffs performed this run.
  [[nodiscard]] std::uint64_t handoffs() const;
  /// Supervised in-place restarts performed this run.
  [[nodiscard]] std::uint64_t restarts() const;

  /// Liveness / readiness snapshot (the API's /healthz payload).
  [[nodiscard]] fleet_health health() const;
  [[nodiscard]] std::string health_json() const;
  /// True while the fleet can still make progress: started, no fatal
  /// error, and work is either finished or at least one slot is alive.
  [[nodiscard]] bool ready() const;

 private:
  enum class segment_state { pending, running, done };

  /// A supervised unit of work: a block range with its own feed and
  /// checkpoint files.
  struct segment {
    std::uint64_t id = 0;
    shard_range range;
    /// Corpus mode: block-index span into the shared reader.
    std::uint64_t corpus_begin = 0, corpus_end = 0;
    segment_state state = segment_state::pending;
  };

  /// One supervised worker position and its live stack.
  struct slot_runtime {
    std::size_t index = 0;
    std::uint64_t segment_id = 0;  // 0 = idle
    bool dead = false;             // circuit open (budget exhausted)
    bool recovering = false;       // failed; restart scheduled
    bool joined = false;
    int restarts_used = 0;
    std::chrono::steady_clock::time_point restart_at{};
    std::uint64_t last_progress = 0;
    std::vector<chain::tx_receipt> receipts;  // receipt-mode slice copy
    std::unique_ptr<service::metrics_registry> metrics;
    std::unique_ptr<service::jsonl_sink> feed;
    std::unique_ptr<store::store_sink> sink;
    std::unique_ptr<service::monitor_service> monitor;
    std::unique_ptr<service::simulated_block_source> source;
    std::unique_ptr<corpus::corpus_block_source> corpus_source;
    /// Counters and forward counts folded in from finished segments.
    std::map<std::string, std::uint64_t> retired_counters;
    std::uint64_t retired_forwarded = 0;
  };

  [[nodiscard]] std::string segment_feed_path(std::uint64_t id) const;
  [[nodiscard]] std::string segment_checkpoint_path(std::uint64_t id) const;
  [[nodiscard]] std::string fleet_checkpoint_path() const;
  [[nodiscard]] std::string wal_dir() const;
  [[nodiscard]] bool durable() const { return !options_.state_dir.empty(); }

  void build_fresh_segments();
  void supervise();
  /// One supervisor pass; returns true when the run is over.
  bool tick_locked();
  void join_slot_locked(slot_runtime& sl);
  void start_segment_on_slot_locked(slot_runtime& sl, segment& seg);
  /// Join + truncate feed to the durable checkpoint + retract the store's
  /// overhang for the segment's range + destroy the stack. Returns the
  /// durable watermark (0 = nothing durable).
  std::uint64_t recover_to_durable_locked(slot_runtime& sl, segment& seg);
  void handoff_locked(slot_runtime& sl, segment& seg);
  void retract_store_range(std::uint64_t from_block, std::uint64_t to_block);
  [[nodiscard]] std::uint64_t segment_durable(const segment& seg) const;
  [[nodiscard]] std::uint64_t watermark_locked() const;
  [[nodiscard]] fleet_health health_locked() const;
  void write_fleet_checkpoint_locked() const;

  const chain::creation_registry& creations_;
  const etherscan::label_db& labels_;
  chain::asset weth_token_;
  const std::vector<chain::tx_receipt>* receipts_ = nullptr;  // receipt mode
  const corpus::corpus_reader* corpus_ = nullptr;  // non-null in backfill mode
  store::incident_store& store_;
  fleet_options options_;
  std::vector<shard_range> plan_;

  mutable std::mutex mu_;  // guards segments_, slots_, counters below
  std::map<std::uint64_t, segment> segments_;
  std::uint64_t next_segment_id_ = 1;
  std::vector<std::unique_ptr<slot_runtime>> slots_;
  std::uint64_t handoffs_ = 0;
  std::uint64_t restarts_ = 0;
  /// The most recent joined-monitor exception — promoted to fatal_error_
  /// only when supervision cannot absorb the failure.
  std::exception_ptr last_failure_;
  std::exception_ptr fatal_error_;

  std::unique_ptr<store::wal_writer> wal_;
  std::thread supervisor_;
  std::atomic<bool> stop_{false};
  bool resumed_ = false;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace leishen::fleet
