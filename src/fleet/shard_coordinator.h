// Sharded monitor fleet: N monitor_service instances over disjoint block
// ranges, fanning incidents into one shared incident_store.
//
// Partitioning (`plan_shards`) slices the receipt log into contiguous
// block ranges of roughly equal receipt counts, never splitting a block —
// a block is the unit the monitor ingests, checkpoints and rolls back, so
// splitting one would break all three. Each shard owns its whole stack:
// metrics registry (resume ADDS the checkpointed counter snapshot into the
// registry, so shards must not share one), monitor, simulated source over
// its receipt slice, a durable JSONL feed, and a store_sink into the
// shared store. The store's canonical (block, tx, id) order makes the
// nondeterministic cross-shard fan-in interleaving invisible: a fleet
// store enumerates bit-identically to a serial single-monitor run.
//
// Consistent checkpointing: each shard checkpoints independently (v3
// monitor checkpoints, reorg journal included); the fleet-level
// `committed_watermark()` is the minimum durable per-shard position — the
// block height up to which EVERY shard's incidents are both in its feed
// and recoverable. `wait()` writes a fleet.ckpt summary naming the shard
// count, ranges and watermark; `resume()` validates the topology against
// it (resharding a half-finished run would orphan feed suffixes), replays
// the per-shard feeds into the fresh store, arms each monitor's
// checkpoint resume, and the restarted fleet appends the exact missing
// suffix — bit-identical to a never-killed run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/receipt.h"
#include "core/scanner.h"
#include "corpus/corpus_block_source.h"
#include "corpus/corpus_reader.h"
#include "service/metrics.h"
#include "service/monitor_service.h"
#include "store/incident_store.h"
#include "store/store_sink.h"

namespace leishen::fleet {

/// One shard's slice of the receipt log: receipt indexes [begin, end) and
/// the block span they cover.
struct shard_range {
  std::size_t begin = 0, end = 0;
  std::uint64_t first_block = 0, last_block = 0;

  friend bool operator==(const shard_range&, const shard_range&) = default;
};

/// Contiguous block-aligned ranges of roughly equal receipt counts. Fewer
/// distinct blocks than shards yields fewer (non-empty) ranges; an empty
/// receipt log yields none.
std::vector<shard_range> plan_shards(
    const std::vector<chain::tx_receipt>& receipts, unsigned shards);

/// A corpus shard: the same tx-index `range` the fleet checkpoint records
/// (so fleet.ckpt is mode-agnostic), plus the block-INDEX span [begin,
/// end) that drives a corpus_block_source.
struct corpus_shard_plan {
  shard_range range;
  std::uint64_t begin_block = 0, end_block = 0;

  friend bool operator==(const corpus_shard_plan&,
                         const corpus_shard_plan&) = default;
};

/// Block-aligned corpus partition of roughly equal transaction counts,
/// planned from the mmap'd block column without materializing anything.
std::vector<corpus_shard_plan> plan_corpus_shards(
    const corpus::corpus_reader& corpus, unsigned shards);

struct fleet_options {
  unsigned shards = 2;
  /// Detection configuration shared by every shard.
  core::scanner_options scan;
  std::size_t queue_capacity = 64;
  /// Per-shard checkpoint cadence in blocks (0 = only on shutdown).
  std::uint64_t checkpoint_every = 4;
  /// Durable state directory (per-shard feeds + checkpoints + fleet.ckpt);
  /// empty = in-memory only, resume unavailable.
  std::string state_dir;
};

class shard_coordinator {
 public:
  /// The chain substrate, receipt log and store are borrowed and must
  /// outlive the coordinator. Receipts must be in chain order (the same
  /// precondition simulated_block_source enforces).
  shard_coordinator(const chain::creation_registry& creations,
                    const etherscan::label_db& labels,
                    chain::asset weth_token,
                    const std::vector<chain::tx_receipt>& receipts,
                    store::incident_store& store, fleet_options options);

  /// Backfill mode: shards scan disjoint block ranges of one shared
  /// mmap'd corpus instead of owned receipt copies — per-shard memory is
  /// the eviction window, not the slice. Checkpoint/resume semantics are
  /// identical to receipt mode; a resumed shard fast-forwards its corpus
  /// source past the checkpointed block instead of re-decoding the prefix.
  /// The corpus (like the registry and labels) is borrowed and must
  /// outlive the coordinator.
  shard_coordinator(const chain::creation_registry& creations,
                    const etherscan::label_db& labels,
                    chain::asset weth_token,
                    const corpus::corpus_reader& corpus,
                    store::incident_store& store, fleet_options options);
  ~shard_coordinator();

  shard_coordinator(const shard_coordinator&) = delete;
  shard_coordinator& operator=(const shard_coordinator&) = delete;

  /// Resume a killed fleet from `state_dir`: validates the topology
  /// against fleet.ckpt, replays every shard feed into the (fresh) store,
  /// and arms per-shard checkpoint resume. Returns false (fresh start)
  /// when no fleet.ckpt exists. Throws std::runtime_error when the shard
  /// count or ranges changed. Call before `start`.
  bool resume();

  /// Spawn every shard's monitor. One run per coordinator.
  void start();

  /// Graceful stop: every shard stops ingesting and drains. Never blocks.
  void request_stop();

  /// Join all shards, flush feeds, write per-shard final checkpoints and
  /// the fleet.ckpt summary. Rethrows the first shard failure (after all
  /// shards are joined).
  void wait();

  void run() {
    start();
    wait();
  }

  [[nodiscard]] const std::vector<shard_range>& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return plan_.size();
  }

  /// Lowest fully-processed block across all shards — the height up to
  /// which the whole fleet's output is complete. Live monitors are
  /// consulted after `wait()`; before any run, resumed checkpoints.
  [[nodiscard]] std::uint64_t committed_watermark() const;

  /// One shard's registry (api/diagnostics).
  [[nodiscard]] service::metrics_registry& shard_metrics(std::size_t i) {
    return *shards_[i]->metrics;
  }

  /// Sum of every shard's counters (fleet-level /metrics view).
  [[nodiscard]] std::map<std::string, std::uint64_t> merged_counters() const;

  [[nodiscard]] std::uint64_t incidents_forwarded() const;

 private:
  struct shard {
    shard_range range;
    std::vector<chain::tx_receipt> receipts;  // owned copy of the slice
    /// Corpus mode: block-index span into the shared reader.
    std::uint64_t corpus_begin = 0, corpus_end = 0;
    std::unique_ptr<service::metrics_registry> metrics;
    std::unique_ptr<service::jsonl_sink> feed;
    std::unique_ptr<store::store_sink> sink;
    std::unique_ptr<service::monitor_service> monitor;
    std::unique_ptr<service::simulated_block_source> source;
    std::unique_ptr<corpus::corpus_block_source> corpus_source;
    std::uint64_t resumed_last_block = 0;
  };

  [[nodiscard]] std::string shard_feed_path(std::size_t i) const;
  [[nodiscard]] std::string shard_checkpoint_path(std::size_t i) const;
  [[nodiscard]] std::string fleet_checkpoint_path() const;
  void write_fleet_checkpoint() const;

  const chain::creation_registry& creations_;
  const etherscan::label_db& labels_;
  chain::asset weth_token_;
  const corpus::corpus_reader* corpus_ = nullptr;  // non-null in backfill mode
  store::incident_store& store_;
  fleet_options options_;
  std::vector<shard_range> plan_;
  std::vector<std::unique_ptr<shard>> shards_;
  bool resumed_ = false;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace leishen::fleet
