#include "fleet/shard_coordinator.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "common/json.h"
#include "service/checkpoint.h"

namespace leishen::fleet {

namespace {

/// plan_shards over a sub-span [span_begin, span_end) of the receipt log —
/// the primitive both initial planning and failure handoff splitting use.
std::vector<shard_range> split_receipt_span(
    const std::vector<chain::tx_receipt>& receipts, std::size_t span_begin,
    std::size_t span_end, unsigned pieces) {
  std::vector<shard_range> plan;
  if (span_begin >= span_end || pieces == 0) return plan;

  // Block boundaries: index of the first receipt of every block in span.
  std::vector<std::size_t> starts;
  for (std::size_t i = span_begin; i < span_end; ++i) {
    if (i == span_begin ||
        receipts[i].block_number != receipts[i - 1].block_number) {
      starts.push_back(i);
    }
  }

  const std::size_t count = span_end - span_begin;
  const std::size_t per_piece = (count + pieces - 1) / pieces;
  std::size_t begin = span_begin;
  std::size_t next_start = 1;  // index into `starts`
  while (begin < span_end) {
    const std::size_t want = begin + per_piece;
    // Advance to the first block boundary at or past the target, so the
    // cut never lands inside a block.
    std::size_t end = span_end;
    while (next_start < starts.size()) {
      if (starts[next_start] >= want) {
        end = starts[next_start];
        break;
      }
      ++next_start;
    }
    if (next_start < starts.size()) ++next_start;
    shard_range r;
    r.begin = begin;
    r.end = end;
    r.first_block = receipts[begin].block_number;
    r.last_block = receipts[end - 1].block_number;
    plan.push_back(r);
    begin = end;
  }
  return plan;
}

/// plan_corpus_shards over a block-index sub-span [begin_block, end_block).
/// `tx_base` is the absolute tx index of the span's first receipt, so the
/// produced ranges stay in global tx-index coordinates.
std::vector<corpus_shard_plan> split_corpus_span(
    const corpus::corpus_reader& corpus, std::uint64_t begin_block,
    std::uint64_t end_block, std::uint64_t tx_base, unsigned pieces) {
  std::vector<corpus_shard_plan> plan;
  if (begin_block >= end_block || pieces == 0) return plan;

  std::uint64_t span_txs = 0;
  for (std::uint64_t b = begin_block; b < end_block; ++b) {
    span_txs += corpus.block(b).tx_count;
  }
  const std::uint64_t per_piece =
      std::max<std::uint64_t>(1, (span_txs + pieces - 1) / pieces);
  std::uint64_t b = begin_block;
  std::uint64_t txs_before = tx_base;
  while (b < end_block) {
    corpus_shard_plan p;
    p.begin_block = b;
    p.range.begin = static_cast<std::size_t>(txs_before);
    const std::uint64_t want = txs_before + per_piece;
    while (b < end_block && txs_before < want) {
      txs_before += corpus.block(b).tx_count;
      ++b;
    }
    p.end_block = b;
    p.range.end = static_cast<std::size_t>(txs_before);
    p.range.first_block = corpus.block(p.begin_block).number;
    p.range.last_block = corpus.block(b - 1).number;
    plan.push_back(p);
  }
  return plan;
}

constexpr int kFleetFormatVersion = 2;  // v2: checksummed + segment topology

struct fleet_checkpoint_v2 {
  std::vector<shard_range> plan;
  std::uint64_t watermark = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t next_segment = 1;
  struct seg {
    std::uint64_t id = 0;
    shard_range range;
    std::uint64_t corpus_begin = 0, corpus_end = 0;
    bool done = false;
  };
  std::vector<seg> segments;
};

std::optional<fleet_checkpoint_v2> parse_fleet_payload(
    const std::string& payload) {
  fleet_checkpoint_v2 cp;
  bool version_ok = false;
  std::size_t declared_slots = 0;
  std::istringstream lines{payload};
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "leishen_fleet_v") {
      version_ok = std::strtoull(value.c_str(), nullptr, 10) ==
                   kFleetFormatVersion;
    } else if (key == "slots") {
      declared_slots = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "watermark") {
      cp.watermark = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "handoffs") {
      cp.handoffs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "next_segment") {
      cp.next_segment = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key.starts_with("plan.")) {
      shard_range r;
      std::istringstream vs{value};
      if (!(vs >> r.begin >> r.end >> r.first_block >> r.last_block)) {
        return std::nullopt;
      }
      cp.plan.push_back(r);
    } else if (key.starts_with("segment.")) {
      fleet_checkpoint_v2::seg s;
      s.id = std::strtoull(key.c_str() + sizeof "segment." - 1, nullptr, 10);
      int state = 0;
      std::istringstream vs{value};
      if (!(vs >> s.range.begin >> s.range.end >> s.range.first_block >>
            s.range.last_block >> s.corpus_begin >> s.corpus_end >> state) ||
          s.id == 0) {
        return std::nullopt;
      }
      s.done = state == 2;
      cp.segments.push_back(s);
    }
  }
  if (!version_ok || cp.plan.size() != declared_slots) return std::nullopt;
  if (cp.segments.empty()) return std::nullopt;
  return cp;
}

/// Truncate a segment feed to the durable height: keep only records at or
/// below `durable`, tolerating a torn trailing line (the crash footprint).
/// Returns the surviving records in file order.
std::vector<service::jsonl_sink::feed_record> truncate_feed(
    const std::string& path, std::uint64_t durable) {
  std::vector<service::jsonl_sink::feed_record> keep;
  if (!std::filesystem::exists(path)) return keep;
  for (service::jsonl_sink::feed_record& rec :
       service::jsonl_sink::read_records(path, /*tolerate_torn_tail=*/true)) {
    if (rec.incident.block_number <= durable) keep.push_back(std::move(rec));
  }
  std::ofstream out{path, std::ios::trunc};
  for (const service::jsonl_sink::feed_record& rec : keep) {
    out << service::jsonl_sink::to_json_line(rec.incident, rec.retract)
        << '\n';
  }
  return keep;
}

}  // namespace

std::vector<shard_range> plan_shards(
    const std::vector<chain::tx_receipt>& receipts, unsigned shards) {
  return split_receipt_span(receipts, 0, receipts.size(), shards);
}

std::vector<corpus_shard_plan> plan_corpus_shards(
    const corpus::corpus_reader& corpus, unsigned shards) {
  return split_corpus_span(corpus, 0, corpus.block_count(), 0, shards);
}

shard_coordinator::shard_coordinator(
    const chain::creation_registry& creations,
    const etherscan::label_db& labels, chain::asset weth_token,
    const corpus::corpus_reader& corpus, store::incident_store& store,
    fleet_options options)
    : creations_{creations},
      labels_{labels},
      weth_token_{weth_token},
      corpus_{&corpus},
      store_{store},
      options_{std::move(options)} {
  for (const corpus_shard_plan& p :
       plan_corpus_shards(corpus, options_.shards)) {
    plan_.push_back(p.range);
  }
  if (durable()) std::filesystem::create_directories(options_.state_dir);
  build_fresh_segments();
}

shard_coordinator::shard_coordinator(
    const chain::creation_registry& creations,
    const etherscan::label_db& labels, chain::asset weth_token,
    const std::vector<chain::tx_receipt>& receipts,
    store::incident_store& store, fleet_options options)
    : creations_{creations},
      labels_{labels},
      weth_token_{weth_token},
      receipts_{&receipts},
      store_{store},
      options_{std::move(options)},
      plan_{plan_shards(receipts, options_.shards)} {
  if (durable()) std::filesystem::create_directories(options_.state_dir);
  build_fresh_segments();
}

void shard_coordinator::build_fresh_segments() {
  segments_.clear();
  next_segment_id_ = 1;
  if (corpus_ != nullptr) {
    for (const corpus_shard_plan& p :
         plan_corpus_shards(*corpus_, options_.shards)) {
      segment seg;
      seg.id = next_segment_id_++;
      seg.range = p.range;
      seg.corpus_begin = p.begin_block;
      seg.corpus_end = p.end_block;
      segments_.emplace(seg.id, seg);
    }
  } else {
    for (const shard_range& r : plan_) {
      segment seg;
      seg.id = next_segment_id_++;
      seg.range = r;
      segments_.emplace(seg.id, seg);
    }
  }
}

shard_coordinator::~shard_coordinator() {
  if (started_ && !finished_) {
    request_stop();
    try {
      wait();
    } catch (...) {
      // Destructor shutdown: the run's error already surfaced elsewhere or
      // is unobservable here either way.
    }
  }
  // The store outlives the coordinator; never leave it pointing at a WAL
  // writer that is about to be destroyed.
  if (wal_) store_.attach_wal(nullptr);
}

std::string shard_coordinator::segment_feed_path(std::uint64_t id) const {
  return options_.state_dir + "/seg-" + std::to_string(id) + ".jsonl";
}

std::string shard_coordinator::segment_checkpoint_path(
    std::uint64_t id) const {
  return options_.state_dir + "/seg-" + std::to_string(id) + ".ckpt";
}

std::string shard_coordinator::fleet_checkpoint_path() const {
  return options_.state_dir + "/fleet.ckpt";
}

std::string shard_coordinator::wal_dir() const {
  return options_.state_dir + "/wal";
}

void shard_coordinator::retract_store_range(std::uint64_t from_block,
                                            std::uint64_t to_block) {
  if (from_block > to_block) return;
  store::incident_filter filter;
  filter.from_block = from_block;
  filter.to_block = to_block;
  // Segment block ranges are disjoint, so everything in the window belongs
  // to the segment being recovered. Retracting shrinks the result set, so
  // page from the start until empty.
  for (;;) {
    const store::incident_page page = store_.query(filter, std::nullopt, 256);
    if (page.items.empty()) break;
    for (const store::stored_incident& item : page.items) {
      store_.retract(item.incident);
    }
  }
}

bool shard_coordinator::resume() {
  if (started_) throw std::logic_error{"fleet: resume() after start()"};
  if (!durable()) return false;

  const std::string path = fleet_checkpoint_path();
  const bool current_exists = std::filesystem::exists(path);
  const bool prev_exists = std::filesystem::exists(path + ".prev");
  if (!current_exists && !prev_exists) return false;

  std::optional<fleet_checkpoint_v2> cp;
  if (auto payload = service::load_checksummed_payload(path)) {
    cp = parse_fleet_payload(*payload);
  }
  if (!cp) {
    // Torn or corrupt current generation: fall back to the previous one —
    // its feeds/checkpoints are still consistent with its topology.
    if (auto payload = service::load_checksummed_payload(path + ".prev")) {
      cp = parse_fleet_payload(*payload);
    }
  }
  if (!cp) {
    throw std::runtime_error{
        "fleet: " + path +
        " exists but fails validation on both generations — refusing to "
        "silently reshard a half-finished run"};
  }
  if (cp->plan != plan_) {
    throw std::runtime_error{
        "fleet: checkpointed topology (" + std::to_string(cp->plan.size()) +
        " shards) does not match the planned " +
        std::to_string(plan_.size()) +
        " — resharding a half-finished run would orphan its feeds"};
  }

  // Restore the segment topology — handoff splits included, so the resumed
  // run continues the reassigned ranges instead of the original plan.
  segments_.clear();
  next_segment_id_ = cp->next_segment;
  for (const fleet_checkpoint_v2::seg& s : cp->segments) {
    segment seg;
    seg.id = s.id;
    seg.range = s.range;
    seg.corpus_begin = s.corpus_begin;
    seg.corpus_end = s.corpus_end;
    seg.state = s.done ? segment_state::done : segment_state::pending;
    segments_.emplace(seg.id, seg);
    next_segment_id_ = std::max(next_segment_id_, s.id + 1);
  }
  handoffs_ = cp->handoffs;

  // Rebuild the store. Preferred path: replay the WAL — one sequential log
  // instead of every feed. Either way each segment's feed is truncated to
  // its durable checkpoint so the resumed monitors append the exact
  // missing suffix.
  const bool from_wal = options_.wal && store::wal_present(wal_dir());
  if (from_wal) {
    const store::wal_recovery rec = store::recover_wal(wal_dir(), store_);
    store::wal_options wopts;
    wopts.dir = wal_dir();
    wopts.segment_max_bytes = options_.wal_segment_max_bytes;
    wopts.fsync_every_n = options_.wal_fsync_every_n;
    wal_ = std::make_unique<store::wal_writer>(wopts, rec.next_segment);
    store_.attach_wal(wal_.get());
  } else if (options_.wal) {
    // WAL enabled for the first time over feed-era state: attach BEFORE
    // the replay so the full store content bootstraps into the log.
    store::wal_options wopts;
    wopts.dir = wal_dir();
    wopts.segment_max_bytes = options_.wal_segment_max_bytes;
    wopts.fsync_every_n = options_.wal_fsync_every_n;
    wal_ = std::make_unique<store::wal_writer>(wopts, 1);
    store_.attach_wal(wal_.get());
  }

  for (auto& [id, seg] : segments_) {
    const std::optional<service::checkpoint> seg_cp =
        service::load_checkpoint(segment_checkpoint_path(id));
    // A done segment's whole range is durable even when its checkpoint
    // trails (checkpoints land every N blocks) or is lost: truncating its
    // feed or retracting its tail would drop work nothing ever re-runs.
    const std::uint64_t seg_durable =
        seg.state == segment_state::done
            ? seg.range.last_block
            : (seg_cp ? seg_cp->last_block : 0);
    const std::vector<service::jsonl_sink::feed_record> keep =
        truncate_feed(segment_feed_path(id), seg_durable);
    if (from_wal) {
      // The WAL may run ahead of the checkpoint (it logs every mutation
      // immediately); the resumed monitor will re-emit everything past the
      // checkpoint, so retract the recovered overhang first. The
      // retractions land in the new WAL, keeping log and store identical.
      const std::uint64_t lo =
          seg_durable >= seg.range.first_block ? seg_durable + 1
                                               : seg.range.first_block;
      retract_store_range(lo, seg.range.last_block);
      continue;
    }
    // Feed replay: bulk-merge runs of emissions through insert_batch (one
    // lock, one version bump per run); only a tombstone — rare — breaks a
    // run, since it must observe the emissions before it.
    std::vector<service::monitor_incident> run;
    const auto flush_run = [this, &run] {
      store_.insert_batch(run);
      run.clear();
    };
    for (const service::jsonl_sink::feed_record& rec : keep) {
      if (rec.retract) {
        flush_run();
        if (!store_.retract(rec.incident)) {
          throw std::runtime_error{
              "fleet: segment " + std::to_string(id) +
              " feed tombstone with no matching emission (block " +
              std::to_string(rec.incident.block_number) + ")"};
        }
      } else {
        run.push_back(rec.incident);
      }
    }
    flush_run();
  }
  resumed_ = true;
  return true;
}

void shard_coordinator::start() {
  if (started_) throw std::logic_error{"fleet: one run per coordinator"};
  started_ = true;

  if (!resumed_ && durable()) {
    // Fresh start over a dirty state dir: stale checkpoints would make the
    // new monitors skip their prefixes against truncated feeds, and a
    // stale WAL would double the store on the next resume.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator{options_.state_dir, ec}) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0) std::filesystem::remove(entry.path());
    }
    std::filesystem::remove_all(wal_dir(), ec);
    if (options_.wal) {
      store::wal_options wopts;
      wopts.dir = wal_dir();
      wopts.segment_max_bytes = options_.wal_segment_max_bytes;
      wopts.fsync_every_n = options_.wal_fsync_every_n;
      wal_ = std::make_unique<store::wal_writer>(wopts, 1);
      store_.attach_wal(wal_.get());
    }
  }

  {
    const std::lock_guard lk{mu_};
    // Fixed slots, one per planned shard; each picks pending segments in
    // block order until none remain.
    for (std::size_t i = 0; i < plan_.size(); ++i) {
      auto sl = std::make_unique<slot_runtime>();
      sl->index = i;
      slots_.push_back(std::move(sl));
    }
    for (auto& sl : slots_) {
      segment* next = nullptr;
      for (auto& [id, seg] : segments_) {
        if (seg.state != segment_state::pending) continue;
        if (next == nullptr ||
            seg.range.first_block < next->range.first_block) {
          next = &seg;
        }
      }
      if (next == nullptr) break;
      start_segment_on_slot_locked(*sl, *next);
    }
    // The topology goes durable at start, not only at a clean finish — a
    // fleet killed mid-run must still be resumable.
    if (durable()) write_fleet_checkpoint_locked();
  }

  supervisor_ = std::thread{[this] { supervise(); }};
}

void shard_coordinator::request_stop() {
  stop_.store(true, std::memory_order_release);
  const std::lock_guard lk{mu_};
  for (auto& sl : slots_) {
    if (sl->monitor) sl->monitor->request_stop();
  }
}

void shard_coordinator::wait() {
  if (!started_ || finished_) return;
  if (supervisor_.joinable()) supervisor_.join();
  {
    // The fatal path ends supervision with the monitors merely asked to
    // stop. Join them before the run is declared finished: a worker still
    // draining its queue past this point would keep advancing its feed and
    // checkpoint after the destructor detaches the WAL, leaving durable
    // state ahead of the log — a silent hole on the next resume.
    const std::lock_guard lk{mu_};
    for (auto& slp : slots_) join_slot_locked(*slp);
  }
  finished_ = true;
  {
    const std::lock_guard lk{mu_};
    if (durable()) write_fleet_checkpoint_locked();
    if (fatal_error_) std::rethrow_exception(fatal_error_);
  }
}

void shard_coordinator::supervise() {
  for (;;) {
    bool done = false;
    try {
      const std::lock_guard lk{mu_};
      done = tick_locked();
    } catch (...) {
      // A recovery step itself failed (a faulted disk during feed
      // truncation or store retraction, a corrupt feed): the run cannot
      // be healed from inside — record the error and end the run so the
      // operator's resume gets a chance instead of the process dying.
      const std::lock_guard lk{mu_};
      if (!fatal_error_) fatal_error_ = std::current_exception();
      for (auto& sl : slots_) {
        if (sl->monitor) sl->monitor->request_stop();
      }
      return;
    }
    if (done) return;
    std::this_thread::sleep_for(
        std::chrono::milliseconds{options_.heartbeat_interval_ms});
  }
}

void shard_coordinator::join_slot_locked(slot_runtime& sl) {
  if (sl.joined || !sl.monitor) return;
  sl.joined = true;
  try {
    sl.monitor->wait();
  } catch (...) {
    // The failure already shows as run_state::failed; recovery or handoff
    // decides what happens next. Remember the error in case supervision
    // cannot absorb it — an absorbed failure must NOT leak out of wait().
    last_failure_ = std::current_exception();
  }
}

bool shard_coordinator::tick_locked() {
  const bool stopping = stop_.load(std::memory_order_acquire);
  const auto now = std::chrono::steady_clock::now();

  for (auto& slp : slots_) {
    slot_runtime& sl = *slp;
    if (sl.dead || sl.segment_id == 0) continue;
    auto seg_it = segments_.find(sl.segment_id);
    segment& seg = seg_it->second;

    if (sl.recovering) {
      if (stopping) {
        // Abandon the restart: the segment's durable state is already
        // consistent (recover happens at restart time), so it simply goes
        // back on the pending queue for a future resume.
        seg.state = segment_state::pending;
        sl.segment_id = 0;
        sl.recovering = false;
        continue;
      }
      if (now < sl.restart_at) continue;
      recover_to_durable_locked(sl, seg);
      ++restarts_;
      sl.recovering = false;
      start_segment_on_slot_locked(sl, seg);
      continue;
    }

    if (!sl.monitor) continue;
    const service::run_state st = sl.monitor->state();
    if (st == service::run_state::running ||
        st == service::run_state::idle) {
      sl.last_progress = sl.monitor->progress();
      continue;
    }

    join_slot_locked(sl);
    if (st == service::run_state::done) {
      if (sl.monitor->last_block() >= seg.range.last_block) {
        seg.state = segment_state::done;
        if (durable()) write_fleet_checkpoint_locked();
      } else {
        // Graceful stop mid-range: progress is durable in the segment
        // checkpoint; the segment resumes as pending next run.
        seg.state = segment_state::pending;
      }
      sl.segment_id = 0;
      continue;
    }

    // failed
    if (!durable()) {
      // No durable state to recover from: in-memory failures are fatal
      // (the monitor's own internal restarts already ran their course).
      sl.dead = true;
      sl.segment_id = 0;
      seg.state = segment_state::pending;
      if (!fatal_error_) {
        fatal_error_ =
            last_failure_ ? last_failure_
                          : std::make_exception_ptr(std::runtime_error{
                                "fleet: shard " + std::to_string(sl.index) +
                                " failed with no state dir to recover from"});
      }
      continue;
    }
    if (stopping) {
      seg.state = segment_state::pending;
      sl.segment_id = 0;
      continue;
    }
    if (sl.restarts_used < options_.restart_budget) {
      // Schedule the restart with exponential backoff; recovery itself
      // runs at the scheduled time.
      sl.recovering = true;
      sl.restart_at =
          now + std::chrono::milliseconds{options_.backoff_base_ms
                                          << sl.restarts_used};
      ++sl.restarts_used;
      continue;
    }
    handoff_locked(sl, seg);
  }

  // Assign pending segments to idle, alive slots (never while stopping).
  if (!stopping) {
    for (auto& slp : slots_) {
      slot_runtime& sl = *slp;
      if (sl.dead || sl.recovering || sl.segment_id != 0) continue;
      segment* next = nullptr;
      for (auto& [id, seg] : segments_) {
        if (seg.state != segment_state::pending) continue;
        if (next == nullptr ||
            seg.range.first_block < next->range.first_block) {
          next = &seg;
        }
      }
      if (next == nullptr) break;
      start_segment_on_slot_locked(sl, *next);
    }
  }

  bool any_running = false;
  for (const auto& slp : slots_) {
    if (slp->segment_id != 0) any_running = true;
  }
  if (stopping) return !any_running;

  bool any_pending = false;
  for (const auto& [id, seg] : segments_) {
    if (seg.state != segment_state::done) any_pending = true;
  }
  if (!any_running && !any_pending) return true;  // clean finish
  if (!any_running && any_pending) {
    bool any_alive = false;
    for (const auto& slp : slots_) {
      if (!slp->dead) any_alive = true;
    }
    if (!any_alive) {
      if (!fatal_error_) {
        fatal_error_ = std::make_exception_ptr(std::runtime_error{
            "fleet: every shard exhausted its restart budget with work "
            "remaining"});
      }
      return true;
    }
  }
  return false;
}

void shard_coordinator::start_segment_on_slot_locked(slot_runtime& sl,
                                                     segment& seg) {
  // Retire the previous completed stack's counters before replacing it, so
  // merged_counters keeps counting finished segments.
  if (sl.metrics) {
    for (const auto& [name, value] : sl.metrics->counter_snapshot()) {
      sl.retired_counters[name] += value;
    }
  }
  if (sl.sink) sl.retired_forwarded += sl.sink->forwarded();
  sl.monitor.reset();
  sl.feed.reset();
  sl.sink.reset();
  sl.source.reset();
  sl.corpus_source.reset();
  sl.metrics = std::make_unique<service::metrics_registry>();

  seg.state = segment_state::running;
  sl.segment_id = seg.id;
  sl.joined = false;

  service::monitor_options mopts;
  mopts.scan = options_.scan;
  mopts.queue_capacity = options_.queue_capacity;
  mopts.checkpoint_every = options_.checkpoint_every;
  if (durable()) {
    mopts.checkpoint_path = segment_checkpoint_path(seg.id);
    // Supervised shards surface every failure to the coordinator: its
    // segment-level recovery is lossless (feed truncation + store
    // retraction + checkpoint resume), while the monitor's internal
    // restart would silently lose the in-flight block.
    mopts.max_worker_restarts = 0;
  }
  if (options_.post_block_hook) {
    mopts.post_block_hook = [hook = options_.post_block_hook,
                             slot = sl.index](std::uint64_t block) {
      hook(slot, block);
    };
  }
  sl.monitor = std::make_unique<service::monitor_service>(
      creations_, labels_, weth_token_, *sl.metrics, std::move(mopts));
  const bool armed = durable() && sl.monitor->resume_from_checkpoint();
  if (durable()) {
    sl.feed = std::make_unique<service::jsonl_sink>(
        segment_feed_path(seg.id), /*append=*/armed,
        options_.feed_fsync_every_n);
    sl.monitor->add_sink(*sl.feed);
  }
  sl.sink = std::make_unique<store::store_sink>(store_);
  sl.monitor->add_sink(*sl.sink);

  if (corpus_ != nullptr) {
    corpus::corpus_source_options copts;
    // Header-only decode of prefilter rejects is only sound when the
    // scanner actually runs its prefilter; otherwise decode everything.
    copts.prefilter_skip_payload = options_.scan.prefilter;
    sl.corpus_source = std::make_unique<corpus::corpus_block_source>(
        *corpus_, seg.corpus_begin, seg.corpus_end, copts);
    if (armed) sl.corpus_source->skip_to_block(sl.monitor->last_block());
    sl.monitor->start(*sl.corpus_source);
  } else {
    sl.receipts.assign(
        receipts_->begin() + static_cast<std::ptrdiff_t>(seg.range.begin),
        receipts_->begin() + static_cast<std::ptrdiff_t>(seg.range.end));
    sl.source = std::make_unique<service::simulated_block_source>(sl.receipts);
    sl.monitor->start(*sl.source);
  }
  sl.last_progress = sl.monitor->progress();
}

std::uint64_t shard_coordinator::recover_to_durable_locked(slot_runtime& sl,
                                                           segment& seg) {
  join_slot_locked(sl);
  const std::optional<service::checkpoint> cp =
      service::load_checkpoint(segment_checkpoint_path(seg.id));
  const std::uint64_t seg_durable = cp ? cp->last_block : 0;
  truncate_feed(segment_feed_path(seg.id), seg_durable);
  // The store holds whatever the dead run fanned in beyond its checkpoint;
  // the restarted monitor re-emits all of it, so retract the overhang
  // (logged to the WAL when one is attached).
  const std::uint64_t lo = seg_durable >= seg.range.first_block
                               ? seg_durable + 1
                               : seg.range.first_block;
  retract_store_range(lo, seg.range.last_block);
  // Tear the stack down; metrics are NOT retired — checkpoint resume adds
  // the durable counter snapshot back into the fresh registry, and folding
  // the live one would double-count everything up to the checkpoint.
  sl.monitor.reset();
  sl.feed.reset();
  sl.sink.reset();
  sl.source.reset();
  sl.corpus_source.reset();
  sl.metrics.reset();
  return seg_durable;
}

void shard_coordinator::handoff_locked(slot_runtime& sl, segment& seg) {
  const std::uint64_t seg_durable = recover_to_durable_locked(sl, seg);
  sl.dead = true;
  sl.segment_id = 0;

  unsigned alive = 0;
  for (const auto& slp : slots_) {
    if (!slp->dead) ++alive;
  }
  const unsigned pieces = std::max(1u, alive);

  if (seg_durable < seg.range.first_block) {
    // Nothing durable: the whole segment goes back on the pending queue
    // for a survivor to run from scratch.
    seg.state = segment_state::pending;
  } else {
    // Split at the dead shard's checkpoint: shrink the segment to its
    // durable prefix (complete, feed and checkpoint agree) and cut the
    // remainder into fresh segments for the survivors.
    const shard_range old = seg.range;
    const std::uint64_t old_corpus_end = seg.corpus_end;
    std::vector<segment> remainder;
    if (corpus_ != nullptr) {
      std::uint64_t b = seg.corpus_begin;
      std::uint64_t txs = seg.range.begin;
      while (b < old_corpus_end && corpus_->block(b).number <= seg_durable) {
        txs += corpus_->block(b).tx_count;
        ++b;
      }
      seg.corpus_end = b;
      seg.range.end = static_cast<std::size_t>(txs);
      seg.range.last_block = seg_durable;
      for (const corpus_shard_plan& p :
           split_corpus_span(*corpus_, b, old_corpus_end, txs, pieces)) {
        segment ns;
        ns.range = p.range;
        ns.corpus_begin = p.begin_block;
        ns.corpus_end = p.end_block;
        remainder.push_back(ns);
      }
    } else {
      std::size_t cut = seg.range.begin;
      while (cut < old.end && (*receipts_)[cut].block_number <= seg_durable) {
        ++cut;
      }
      seg.range.end = cut;
      seg.range.last_block = seg_durable;
      for (const shard_range& r :
           split_receipt_span(*receipts_, cut, old.end, pieces)) {
        segment ns;
        ns.range = r;
        remainder.push_back(ns);
      }
    }
    seg.state = segment_state::done;
    for (segment& ns : remainder) {
      ns.id = next_segment_id_++;
      ns.state = segment_state::pending;
      // A fresh id can still collide with stale files from an older run's
      // dirty dir; make sure the new segment starts clean.
      std::filesystem::remove(segment_feed_path(ns.id));
      std::filesystem::remove(segment_checkpoint_path(ns.id));
      std::filesystem::remove(segment_checkpoint_path(ns.id) + ".prev");
      segments_.emplace(ns.id, ns);
    }
  }
  ++handoffs_;
  if (durable()) write_fleet_checkpoint_locked();
}

std::uint64_t shard_coordinator::segment_durable(const segment& seg) const {
  if (durable()) {
    const std::optional<service::checkpoint> cp =
        service::load_checkpoint(segment_checkpoint_path(seg.id));
    return cp ? cp->last_block : 0;
  }
  // In-memory: durable == processed, but only once the run finished.
  if (finished_ && seg.state == segment_state::done) {
    return seg.range.last_block;
  }
  return 0;
}

std::uint64_t shard_coordinator::watermark_locked() const {
  // Walk the segments in block order: advance through fully-durable ones,
  // stop inside the first partial one. Handoff keeps ranges disjoint and
  // contiguous, so the walk visits every height exactly once.
  std::vector<const segment*> ordered;
  ordered.reserve(segments_.size());
  for (const auto& [id, seg] : segments_) ordered.push_back(&seg);
  std::sort(ordered.begin(), ordered.end(),
            [](const segment* a, const segment* b) {
              return a->range.first_block < b->range.first_block;
            });
  std::uint64_t w = 0;
  for (const segment* seg : ordered) {
    const std::uint64_t d = segment_durable(*seg);
    if (d >= seg->range.last_block) {
      w = seg->range.last_block;
      continue;
    }
    if (d >= seg->range.first_block) w = d;
    break;
  }
  return w;
}

std::uint64_t shard_coordinator::committed_watermark() const {
  const std::lock_guard lk{mu_};
  return watermark_locked();
}

service::metrics_registry& shard_coordinator::shard_metrics(std::size_t i) {
  const std::lock_guard lk{mu_};
  if (i >= slots_.size() || !slots_[i]->metrics) {
    throw std::out_of_range{"fleet: slot has no live registry"};
  }
  return *slots_[i]->metrics;
}

std::map<std::string, std::uint64_t> shard_coordinator::merged_counters()
    const {
  const std::lock_guard lk{mu_};
  std::map<std::string, std::uint64_t> merged;
  for (const auto& sl : slots_) {
    for (const auto& [name, value] : sl->retired_counters) {
      merged[name] += value;
    }
    if (sl->metrics) {
      for (const auto& [name, value] : sl->metrics->counter_snapshot()) {
        merged[name] += value;
      }
    }
  }
  return merged;
}

std::uint64_t shard_coordinator::incidents_forwarded() const {
  const std::lock_guard lk{mu_};
  std::uint64_t n = 0;
  for (const auto& sl : slots_) {
    n += sl->retired_forwarded;
    if (sl->sink) n += sl->sink->forwarded();
  }
  return n;
}

std::uint64_t shard_coordinator::handoffs() const {
  const std::lock_guard lk{mu_};
  return handoffs_;
}

std::uint64_t shard_coordinator::restarts() const {
  const std::lock_guard lk{mu_};
  return restarts_;
}

fleet_health shard_coordinator::health_locked() const {
  fleet_health h;
  h.watermark = watermark_locked();
  h.handoffs = handoffs_;
  h.restarts = restarts_;
  for (const auto& [id, seg] : segments_) {
    switch (seg.state) {
      case segment_state::pending: ++h.segments_pending; break;
      case segment_state::running: ++h.segments_running; break;
      case segment_state::done: ++h.segments_done; break;
    }
  }
  if (wal_) {
    h.wal_appended = wal_->appended();
    h.wal_fsyncs = wal_->fsyncs();
    h.wal_rotations = wal_->rotations();
    h.wal_lag_records = wal_->lag_records();
  }
  bool any_alive = false;
  for (const auto& slp : slots_) {
    const slot_runtime& sl = *slp;
    if (!sl.dead) any_alive = true;
    slot_health sh;
    sh.slot = sl.index;
    sh.segment = sl.segment_id;
    sh.alive = !sl.dead;
    sh.restarts = sl.restarts_used;
    if (sl.dead) {
      sh.state = "dead";
    } else if (sl.recovering) {
      sh.state = "recovering";
    } else if (!sl.monitor) {
      sh.state = "idle";
    } else {
      switch (sl.monitor->state()) {
        case service::run_state::idle: sh.state = "idle"; break;
        case service::run_state::running: sh.state = "running"; break;
        case service::run_state::done: sh.state = "done"; break;
        case service::run_state::failed: sh.state = "failed"; break;
      }
      sh.progress = sl.monitor->progress();
      sh.queue_depth = sl.monitor->queue().size();
    }
    h.slots.push_back(std::move(sh));
  }
  const bool all_done = h.segments_pending == 0 && h.segments_running == 0;
  h.ready = started_ && fatal_error_ == nullptr && (all_done || any_alive);
  return h;
}

fleet_health shard_coordinator::health() const {
  const std::lock_guard lk{mu_};
  return health_locked();
}

bool shard_coordinator::ready() const {
  const std::lock_guard lk{mu_};
  return health_locked().ready;
}

std::string shard_coordinator::health_json() const {
  const fleet_health h = health();
  std::string out = "{\"ready\":";
  out += h.ready ? "true" : "false";
  out += ",\"watermark\":" + std::to_string(h.watermark);
  out += ",\"handoffs\":" + std::to_string(h.handoffs);
  out += ",\"restarts\":" + std::to_string(h.restarts);
  out += ",\"segments\":{\"pending\":" + std::to_string(h.segments_pending) +
         ",\"running\":" + std::to_string(h.segments_running) +
         ",\"done\":" + std::to_string(h.segments_done) + "}";
  out += ",\"wal\":{\"appended\":" + std::to_string(h.wal_appended) +
         ",\"fsyncs\":" + std::to_string(h.wal_fsyncs) +
         ",\"rotations\":" + std::to_string(h.wal_rotations) +
         ",\"lag_records\":" + std::to_string(h.wal_lag_records) + "}";
  out += ",\"shards\":[";
  for (std::size_t i = 0; i < h.slots.size(); ++i) {
    const slot_health& sh = h.slots[i];
    if (i > 0) out += ",";
    out += "{\"slot\":" + std::to_string(sh.slot);
    out += ",\"segment\":" + std::to_string(sh.segment);
    out += ",\"alive\":";
    out += sh.alive ? "true" : "false";
    out += ",\"state\":\"" + json::escape(sh.state) + "\"";
    out += ",\"progress\":" + std::to_string(sh.progress);
    out += ",\"restarts\":" + std::to_string(sh.restarts);
    out += ",\"queue_depth\":" + std::to_string(sh.queue_depth) + "}";
  }
  out += "]}";
  return out;
}

void shard_coordinator::write_fleet_checkpoint_locked() const {
  std::ostringstream os;
  os << "leishen_fleet_v=" << kFleetFormatVersion << "\n";
  os << "slots=" << plan_.size() << "\n";
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const shard_range& r = plan_[i];
    os << "plan." << i << "=" << r.begin << ' ' << r.end << ' '
       << r.first_block << ' ' << r.last_block << "\n";
  }
  os << "next_segment=" << next_segment_id_ << "\n";
  os << "handoffs=" << handoffs_ << "\n";
  os << "watermark=" << watermark_locked() << "\n";
  for (const auto& [id, seg] : segments_) {
    // `running` persists as pending (0): liveness is a per-run property,
    // and a resumed run re-arms the segment from its own checkpoint.
    const int state = seg.state == segment_state::done ? 2 : 0;
    os << "segment." << id << "=" << seg.range.begin << ' ' << seg.range.end
       << ' ' << seg.range.first_block << ' ' << seg.range.last_block << ' '
       << seg.corpus_begin << ' ' << seg.corpus_end << ' ' << state << "\n";
  }
  service::save_checksummed_file(fleet_checkpoint_path(), os.str());
}

}  // namespace leishen::fleet
