#include "fleet/shard_coordinator.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace leishen::fleet {

namespace {

constexpr const char* kFleetMagic = "leishen-fleet-checkpoint v1";

struct fleet_checkpoint {
  std::vector<shard_range> ranges;
  std::uint64_t watermark = 0;
};

std::optional<fleet_checkpoint> load_fleet_checkpoint(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kFleetMagic) return std::nullopt;
  fleet_checkpoint cp;
  std::size_t declared = 0;
  while (std::getline(in, line)) {
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    if (key == "shards") {
      ls >> declared;
    } else if (key == "range") {
      shard_range r;
      ls >> r.begin >> r.end >> r.first_block >> r.last_block;
      if (!ls) return std::nullopt;
      cp.ranges.push_back(r);
    } else if (key == "watermark") {
      ls >> cp.watermark;
    }
  }
  if (cp.ranges.size() != declared) return std::nullopt;
  return cp;
}

}  // namespace

std::vector<shard_range> plan_shards(
    const std::vector<chain::tx_receipt>& receipts, unsigned shards) {
  std::vector<shard_range> plan;
  if (receipts.empty() || shards == 0) return plan;

  // Block boundaries: index of the first receipt of every block.
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    if (i == 0 || receipts[i].block_number != receipts[i - 1].block_number) {
      starts.push_back(i);
    }
  }

  const std::size_t per_shard =
      (receipts.size() + shards - 1) / shards;  // receipts, not blocks
  std::size_t begin = 0;
  std::size_t next_start = 1;  // index into `starts`
  while (begin < receipts.size()) {
    const std::size_t want = begin + per_shard;
    // Advance to the first block boundary at or past the target, so the
    // cut never lands inside a block.
    std::size_t end = receipts.size();
    while (next_start < starts.size()) {
      if (starts[next_start] >= want) {
        end = starts[next_start];
        break;
      }
      ++next_start;
    }
    if (next_start < starts.size()) ++next_start;
    shard_range r;
    r.begin = begin;
    r.end = end;
    r.first_block = receipts[begin].block_number;
    r.last_block = receipts[end - 1].block_number;
    plan.push_back(r);
    begin = end;
  }
  return plan;
}

std::vector<corpus_shard_plan> plan_corpus_shards(
    const corpus::corpus_reader& corpus, unsigned shards) {
  std::vector<corpus_shard_plan> plan;
  const std::uint64_t blocks = corpus.block_count();
  if (blocks == 0 || shards == 0) return plan;

  // Same policy as plan_shards: contiguous block-aligned spans of roughly
  // equal transaction counts, cut at the first block boundary at or past
  // each per-shard target. Planned from the 32-byte block records alone.
  const std::uint64_t per_shard = (corpus.tx_count() + shards - 1) / shards;
  std::uint64_t b = 0;
  std::uint64_t txs_before = 0;
  while (b < blocks) {
    corpus_shard_plan p;
    p.begin_block = b;
    p.range.begin = static_cast<std::size_t>(txs_before);
    const std::uint64_t want = txs_before + per_shard;
    while (b < blocks && txs_before < want) {
      txs_before += corpus.block(b).tx_count;
      ++b;
    }
    p.end_block = b;
    p.range.end = static_cast<std::size_t>(txs_before);
    p.range.first_block = corpus.block(p.begin_block).number;
    p.range.last_block = corpus.block(b - 1).number;
    plan.push_back(p);
  }
  return plan;
}

shard_coordinator::shard_coordinator(
    const chain::creation_registry& creations,
    const etherscan::label_db& labels, chain::asset weth_token,
    const corpus::corpus_reader& corpus, store::incident_store& store,
    fleet_options options)
    : creations_{creations},
      labels_{labels},
      weth_token_{weth_token},
      corpus_{&corpus},
      store_{store},
      options_{std::move(options)} {
  if (!options_.state_dir.empty()) {
    std::filesystem::create_directories(options_.state_dir);
  }
  for (const corpus_shard_plan& p :
       plan_corpus_shards(corpus, options_.shards)) {
    plan_.push_back(p.range);
    auto s = std::make_unique<shard>();
    s->range = p.range;
    s->corpus_begin = p.begin_block;
    s->corpus_end = p.end_block;
    s->metrics = std::make_unique<service::metrics_registry>();
    shards_.push_back(std::move(s));
  }
}

shard_coordinator::shard_coordinator(
    const chain::creation_registry& creations,
    const etherscan::label_db& labels, chain::asset weth_token,
    const std::vector<chain::tx_receipt>& receipts,
    store::incident_store& store, fleet_options options)
    : creations_{creations},
      labels_{labels},
      weth_token_{weth_token},
      store_{store},
      options_{std::move(options)},
      plan_{plan_shards(receipts, options_.shards)} {
  if (!options_.state_dir.empty()) {
    std::filesystem::create_directories(options_.state_dir);
  }
  for (const shard_range& r : plan_) {
    auto s = std::make_unique<shard>();
    s->range = r;
    s->receipts.assign(receipts.begin() + static_cast<std::ptrdiff_t>(r.begin),
                       receipts.begin() + static_cast<std::ptrdiff_t>(r.end));
    s->metrics = std::make_unique<service::metrics_registry>();
    shards_.push_back(std::move(s));
  }
}

shard_coordinator::~shard_coordinator() {
  if (started_ && !finished_) {
    request_stop();
    try {
      wait();
    } catch (...) {
      // Destructor shutdown: the run's error already surfaced elsewhere or
      // is unobservable here either way.
    }
  }
}

std::string shard_coordinator::shard_feed_path(std::size_t i) const {
  return options_.state_dir + "/shard-" + std::to_string(i) + ".jsonl";
}

std::string shard_coordinator::shard_checkpoint_path(std::size_t i) const {
  return options_.state_dir + "/shard-" + std::to_string(i) + ".ckpt";
}

std::string shard_coordinator::fleet_checkpoint_path() const {
  return options_.state_dir + "/fleet.ckpt";
}

bool shard_coordinator::resume() {
  if (started_) throw std::logic_error{"fleet: resume() after start()"};
  if (options_.state_dir.empty()) return false;
  const std::optional<fleet_checkpoint> cp =
      load_fleet_checkpoint(fleet_checkpoint_path());
  if (!cp) return false;
  if (cp->ranges != plan_) {
    throw std::runtime_error{
        "fleet: checkpointed topology (" + std::to_string(cp->ranges.size()) +
        " shards) does not match the planned " +
        std::to_string(plan_.size()) +
        " — resharding a half-finished run would orphan its feeds"};
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    const std::optional<service::checkpoint> shard_cp =
        service::load_checkpoint(shard_checkpoint_path(i));
    const std::uint64_t durable = shard_cp ? shard_cp->last_block : 0;

    // The feed may run ahead of the checkpoint (feed lines land before the
    // next checkpoint cadence). Truncate it to the durable height first;
    // the resumed monitor re-emits everything past it, so keeping the
    // overhang would double every incident in the gap.
    const std::string feed = shard_feed_path(i);
    std::vector<service::jsonl_sink::feed_record> keep;
    if (std::filesystem::exists(feed)) {
      for (service::jsonl_sink::feed_record& rec :
           service::jsonl_sink::read_records(feed)) {
        if (rec.incident.block_number <= durable) {
          keep.push_back(std::move(rec));
        }
      }
      std::ofstream out{feed, std::ios::trunc};
      for (const service::jsonl_sink::feed_record& rec : keep) {
        out << service::jsonl_sink::to_json_line(rec.incident, rec.retract)
            << '\n';
      }
    }
    // Bulk-merge the surviving feed into the store: runs of emissions go
    // through insert_batch (one lock, one version bump per run) and only a
    // tombstone — rare — breaks a run, since it must observe the
    // emissions before it.
    std::vector<service::monitor_incident> run;
    const auto flush_run = [this, &run] {
      store_.insert_batch(run);
      run.clear();
    };
    for (service::jsonl_sink::feed_record& rec : keep) {
      if (rec.retract) {
        flush_run();
        if (!store_.retract(rec.incident)) {
          throw std::runtime_error{
              "fleet: shard " + std::to_string(i) +
              " feed tombstone with no matching emission (block " +
              std::to_string(rec.incident.block_number) + ")"};
        }
      } else {
        run.push_back(std::move(rec.incident));
      }
    }
    flush_run();
    s.resumed_last_block = durable;
  }
  resumed_ = true;
  return true;
}

void shard_coordinator::start() {
  if (started_) throw std::logic_error{"fleet: one run per coordinator"};
  started_ = true;
  if (!resumed_ && !options_.state_dir.empty()) {
    // Fresh start over a dirty state dir: stale checkpoints would make the
    // new monitors skip their prefixes against truncated feeds.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::filesystem::remove(shard_checkpoint_path(i));
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    service::monitor_options mopts;
    mopts.scan = options_.scan;
    mopts.queue_capacity = options_.queue_capacity;
    mopts.checkpoint_every = options_.checkpoint_every;
    if (!options_.state_dir.empty()) {
      mopts.checkpoint_path = shard_checkpoint_path(i);
    }
    s.monitor = std::make_unique<service::monitor_service>(
        creations_, labels_, weth_token_, *s.metrics, std::move(mopts));
    if (resumed_) s.monitor->resume_from_checkpoint();
    if (!options_.state_dir.empty()) {
      s.feed = std::make_unique<service::jsonl_sink>(
          shard_feed_path(i), /*append=*/resumed_);
      s.monitor->add_sink(*s.feed);
    }
    s.sink = std::make_unique<store::store_sink>(store_);
    s.monitor->add_sink(*s.sink);
    if (corpus_ != nullptr) {
      corpus::corpus_source_options copts;
      // Header-only decode of prefilter rejects is only sound when the
      // scanner actually runs its prefilter; otherwise decode everything.
      copts.prefilter_skip_payload = options_.scan.prefilter;
      s.corpus_source = std::make_unique<corpus::corpus_block_source>(
          *corpus_, s.corpus_begin, s.corpus_end, copts);
      if (resumed_) s.corpus_source->skip_to_block(s.resumed_last_block);
      s.monitor->start(*s.corpus_source);
    } else {
      s.source = std::make_unique<service::simulated_block_source>(s.receipts);
      s.monitor->start(*s.source);
    }
  }
  // The topology goes durable at start, not only at a clean finish — a
  // fleet killed mid-run must still be resumable (wait() refreshes the
  // watermark on a clean finish).
  if (!options_.state_dir.empty()) write_fleet_checkpoint();
}

void shard_coordinator::request_stop() {
  for (const auto& s : shards_) {
    if (s->monitor) s->monitor->request_stop();
  }
}

void shard_coordinator::wait() {
  if (!started_ || finished_) return;
  std::exception_ptr first_error;
  for (const auto& s : shards_) {
    if (!s->monitor) continue;
    try {
      s->monitor->wait();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  finished_ = true;
  if (!options_.state_dir.empty()) write_fleet_checkpoint();
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t shard_coordinator::committed_watermark() const {
  std::uint64_t watermark = UINT64_MAX;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::uint64_t durable = 0;
    if (!options_.state_dir.empty()) {
      const std::optional<service::checkpoint> cp =
          service::load_checkpoint(shard_checkpoint_path(i));
      if (cp) durable = cp->last_block;
    } else if (finished_ && shards_[i]->monitor) {
      durable = shards_[i]->monitor->last_block();
    }
    watermark = std::min(watermark, durable);
  }
  return shards_.empty() || watermark == UINT64_MAX ? 0 : watermark;
}

std::map<std::string, std::uint64_t> shard_coordinator::merged_counters()
    const {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& s : shards_) {
    for (const auto& [name, value] : s->metrics->counter_snapshot()) {
      merged[name] += value;
    }
  }
  return merged;
}

std::uint64_t shard_coordinator::incidents_forwarded() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    if (s->sink) n += s->sink->forwarded();
  }
  return n;
}

void shard_coordinator::write_fleet_checkpoint() const {
  const std::string path = fleet_checkpoint_path();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    out << kFleetMagic << '\n';
    out << "shards " << plan_.size() << '\n';
    for (const shard_range& r : plan_) {
      out << "range " << r.begin << ' ' << r.end << ' ' << r.first_block
          << ' ' << r.last_block << '\n';
    }
    out << "watermark " << committed_watermark() << '\n';
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace leishen::fleet
